#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace tracesel::util {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size())
    throw std::invalid_argument("pearson: length mismatch");
  const std::size_t n = xs.size();
  if (n < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> ranks(std::span<const double> xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> out(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    // Average rank over the tie group [i, j], 1-based.
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) out[order[k]] = avg;
    i = j + 1;
  }
  return out;
}

double spearman(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size())
    throw std::invalid_argument("spearman: length mismatch");
  const auto rx = ranks(xs);
  const auto ry = ranks(ys);
  return pearson(rx, ry);
}

double monotone_fraction(std::span<const double> xs,
                         std::span<const double> ys) {
  if (xs.size() != ys.size())
    throw std::invalid_argument("monotone_fraction: length mismatch");
  const std::size_t n = xs.size();
  if (n < 2) return 1.0;
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (xs[a] != xs[b]) return xs[a] < xs[b];
    return ys[a] < ys[b];
  });
  std::size_t good = 0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    if (ys[order[i + 1]] >= ys[order[i]]) ++good;
  }
  return static_cast<double>(good) / static_cast<double>(n - 1);
}

}  // namespace tracesel::util
