#pragma once
// Child-process plumbing and length-prefixed framing for the distributed
// selection engine (DESIGN.md §12, docs/distributed.md).
//
// Subprocess wraps fork/exec with stdin/stdout pipes and explicit
// lifecycle control: the coordinator needs to kill a hung worker outright
// (SIGKILL, never cooperative — the worker may be wedged), reap every
// child it spawned (no zombies, even when the coordinator unwinds via an
// exception: the destructor kills and reaps), and survive a worker dying
// mid-write (SIGPIPE is turned into an EPIPE error return by
// ignore_sigpipe(), which spawn() installs process-wide).
//
// Framing: a pipe is a byte stream, so messages are delimited by a fixed
// 20-byte header — 8-byte magic "TSELFRM1", little-endian u32 payload
// length, little-endian u64 FNV-1a checksum of the payload. The checksum
// catches payload corruption inside an intact frame; a bad magic or an
// over-cap length means stream desynchronization, which FrameReader
// reports as kCorrupt — unrecoverable for that pipe (the coordinator
// responds by killing and respawning the worker).

#include <sys/types.h>

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.hpp"

namespace tracesel::util {

/// Installs SIG_IGN for SIGPIPE (idempotent, first call wins) so a write
/// to a dead peer fails with EPIPE instead of killing the process.
void ignore_sigpipe();

class Subprocess {
 public:
  Subprocess() = default;
  Subprocess(const Subprocess&) = delete;
  Subprocess& operator=(const Subprocess&) = delete;
  Subprocess(Subprocess&& other) noexcept { *this = std::move(other); }
  Subprocess& operator=(Subprocess&& other) noexcept;
  /// Kills (SIGKILL) and reaps the child if it is still running — a
  /// coordinator unwinding through an exception leaves no zombies behind.
  ~Subprocess();

  /// fork/exec of argv (argv[0] resolved via PATH when it has no slash),
  /// with pipes on the child's stdin/stdout; stderr is inherited so
  /// worker diagnostics reach the operator. The parent's read end is
  /// non-blocking (poll-driven); the write end stays blocking. exec
  /// failure inside the child exits 127, observed by the caller as an
  /// immediate child death.
  static Result<Subprocess> spawn(const std::vector<std::string>& argv);

  bool valid() const { return pid_ > 0; }
  pid_t pid() const { return pid_; }
  int stdin_fd() const { return stdin_fd_; }
  int stdout_fd() const { return stdout_fd_; }

  /// Blocking write of the whole buffer (EINTR retried). A typed error on
  /// EPIPE (peer died) or any other write failure.
  Status write_all(std::string_view bytes) const;

  void close_stdin();

  /// SIGKILL; the caller still must wait()/try_wait() to reap.
  void kill_hard() const;

  /// Non-blocking reap. True when the child has exited (code: exit status,
  /// or 128+signal for a signalled death); false while still running.
  bool try_wait(int* code);

  /// Blocking reap; idempotent (returns the cached code after the first).
  int wait();

 private:
  void close_fds();

  pid_t pid_ = -1;
  int stdin_fd_ = -1;
  int stdout_fd_ = -1;
  bool reaped_ = false;
  int exit_code_ = -1;
};

// --- length-prefixed framing -------------------------------------------

inline constexpr char kFrameMagic[8] = {'T', 'S', 'E', 'L',
                                        'F', 'R', 'M', '1'};
inline constexpr std::size_t kFrameHeaderBytes = 8 + 4 + 8;
/// Frames carry checkpoint-sized payloads; anything larger is a corrupted
/// length field, not a legitimate message.
inline constexpr std::size_t kMaxFrameBytes = 64u << 20;

/// Header + payload as one contiguous buffer.
std::string encode_frame(std::string_view payload);

/// encode_frame + write_all on a raw fd (EINTR retried; EPIPE typed).
Status write_frame(int fd, std::string_view payload);

/// Incremental decoder: feed() raw bytes as they arrive, then drain
/// complete frames with next(). Once a frame fails validation the stream
/// is poisoned (kCorrupt forever) — framing cannot resynchronize.
class FrameReader {
 public:
  enum class State { kFrame, kNeedMore, kCorrupt };

  void feed(const char* data, std::size_t n) { buffer_.append(data, n); }
  void feed(std::string_view bytes) { buffer_.append(bytes); }

  /// Extracts the next complete frame's payload into `payload`.
  State next(std::string& payload);

  /// Human-readable reason after kCorrupt.
  const std::string& corrupt_reason() const { return corrupt_reason_; }

  /// Bytes buffered but not yet consumed (diagnostics).
  std::size_t buffered() const { return buffer_.size(); }

 private:
  std::string buffer_;
  bool corrupt_ = false;
  std::string corrupt_reason_;
};

}  // namespace tracesel::util
