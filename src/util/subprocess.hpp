#pragma once
// Child-process plumbing for the distributed selection engine
// (DESIGN.md §12, docs/distributed.md).
//
// Subprocess wraps fork/exec with stdin/stdout pipes and explicit
// lifecycle control: the coordinator needs to kill a hung worker outright
// (SIGKILL, never cooperative — the worker may be wedged), reap every
// child it spawned (no zombies, even when the coordinator unwinds via an
// exception: the destructor kills and reaps), and survive a worker dying
// mid-write (SIGPIPE is turned into an EPIPE error return by
// ignore_sigpipe(), which spawn() installs process-wide).
//
// The byte framing the coordinator/worker pipes speak lives in
// util/framing.hpp (shared with the traceseld socket protocol); it is
// re-exported here because every subprocess peer needs it.

#include <sys/types.h>

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/framing.hpp"
#include "util/result.hpp"

namespace tracesel::util {

/// Installs SIG_IGN for SIGPIPE (idempotent, first call wins) so a write
/// to a dead peer fails with EPIPE instead of killing the process.
void ignore_sigpipe();

class Subprocess {
 public:
  Subprocess() = default;
  Subprocess(const Subprocess&) = delete;
  Subprocess& operator=(const Subprocess&) = delete;
  Subprocess(Subprocess&& other) noexcept { *this = std::move(other); }
  Subprocess& operator=(Subprocess&& other) noexcept;
  /// Kills (SIGKILL) and reaps the child if it is still running — a
  /// coordinator unwinding through an exception leaves no zombies behind.
  ~Subprocess();

  /// fork/exec of argv (argv[0] resolved via PATH when it has no slash),
  /// with pipes on the child's stdin/stdout; stderr is inherited so
  /// worker diagnostics reach the operator. The parent's read end is
  /// non-blocking (poll-driven); the write end stays blocking. exec
  /// failure inside the child exits 127, observed by the caller as an
  /// immediate child death.
  static Result<Subprocess> spawn(const std::vector<std::string>& argv);

  bool valid() const { return pid_ > 0; }
  pid_t pid() const { return pid_; }
  int stdin_fd() const { return stdin_fd_; }
  int stdout_fd() const { return stdout_fd_; }

  /// Blocking write of the whole buffer (EINTR retried). A typed error on
  /// EPIPE (peer died) or any other write failure.
  Status write_all(std::string_view bytes) const;

  void close_stdin();

  /// SIGKILL; the caller still must wait()/try_wait() to reap.
  void kill_hard() const;

  /// Non-blocking reap. True when the child has exited (code: exit status,
  /// or 128+signal for a signalled death); false while still running.
  bool try_wait(int* code);

  /// Blocking reap; idempotent (returns the cached code after the first).
  int wait();

 private:
  void close_fds();

  pid_t pid_ = -1;
  int stdin_fd_ = -1;
  int stdout_fd_ = -1;
  bool reaped_ = false;
  int exit_code_ = -1;
};

}  // namespace tracesel::util
