#pragma once
// Cooperative cancellation and deadlines for long-running pipeline stages
// (DESIGN.md §11). A selection job on a production-scale spec runs for
// hours; operator interrupts, node preemption and per-request deadlines
// must stop it cleanly — never a crash, never a hang, and with the best
// partial answer found so far preserved.
//
// Design constraints, in order:
//
//  1. Cooperative. Nothing is ever killed: hot loops poll cancelled() at
//     natural granule boundaries (a product node, a combination, a shard,
//     a Monte-Carlo trial) and unwind with a typed partial outcome. The
//     poll is one relaxed atomic load (plus a steady_clock read when a
//     deadline is armed), cheap against any granule that does real work.
//
//  2. Signal-safe. cancel() performs a single lock-free atomic store, so a
//     SIGINT/SIGTERM handler may call it directly on a pre-created token.
//
//  3. Inert by default. A default-constructed token has no shared state
//     and can never report cancellation, so plumbing a CancelToken through
//     every SelectorConfig costs nothing to callers that never use it.
//
// Tokens are value types sharing state: copies observe (and may request)
// the same cancellation. Stages that cannot return a partial result
// (parsing, building the interleaving) throw CancelledError instead; the
// Session facade and the CLI translate it into a typed util::Result error
// or the distinct "interrupted" exit code.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

namespace tracesel::util {

/// Thrown by stages that cannot carry a partial result when cancellation
/// is observed mid-construction (flow parse, interleave build). Stages
/// that *can* degrade (Step 1/2 search, Monte-Carlo) return a partial
/// outcome instead of throwing.
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(const std::string& stage)
      : std::runtime_error("cancelled: " + stage), stage_(stage) {}
  const std::string& stage() const { return stage_; }

 private:
  std::string stage_;
};

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// Inert token: valid() is false and cancelled() can never become true.
  CancelToken() = default;

  /// A live token with fresh shared state, not cancelled, no deadline.
  static CancelToken make() {
    CancelToken t;
    t.state_ = std::make_shared<State>();
    return t;
  }

  /// A live token that auto-cancels once `timeout` has elapsed.
  static CancelToken after(std::chrono::nanoseconds timeout) {
    CancelToken t = make();
    t.set_deadline(Clock::now() + timeout);
    return t;
  }

  bool valid() const { return state_ != nullptr; }

  /// Requests cancellation. Idempotent and async-signal-safe (one
  /// lock-free atomic store); a no-op on an inert token.
  void cancel() const {
    if (state_) state_->cancelled.store(true, std::memory_order_relaxed);
  }

  /// Arms (or replaces) the deadline; reaching it makes cancelled() true.
  void set_deadline(Clock::time_point deadline) const {
    if (state_)
      state_->deadline_ns.store(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              deadline.time_since_epoch())
              .count(),
          std::memory_order_relaxed);
  }
  void set_timeout(std::chrono::nanoseconds timeout) const {
    set_deadline(Clock::now() + timeout);
  }

  /// True iff cancel() was called (deadline expiry not considered).
  bool cancel_requested() const {
    return state_ && state_->cancelled.load(std::memory_order_relaxed);
  }

  /// The cooperative poll: cancel() was called or the deadline passed.
  /// Deadline expiry latches the flag so later polls skip the clock read.
  bool cancelled() const {
    if (state_ == nullptr) return false;
    if (state_->cancelled.load(std::memory_order_relaxed)) return true;
    const std::int64_t d = state_->deadline_ns.load(std::memory_order_relaxed);
    if (d != 0 &&
        Clock::now().time_since_epoch() >= std::chrono::nanoseconds(d)) {
      state_->cancelled.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

 private:
  struct State {
    std::atomic<bool> cancelled{false};
    /// Steady-clock deadline in ns since clock epoch; 0 = no deadline.
    std::atomic<std::int64_t> deadline_ns{0};
  };

  std::shared_ptr<State> state_;
};

}  // namespace tracesel::util
