#include "util/json.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace tracesel::util {

Json Json::null() { return Json(); }

Json Json::boolean(bool value) {
  Json j;
  j.kind_ = Kind::kBool;
  j.bool_ = value;
  return j;
}

Json Json::number(double value) {
  Json j;
  j.kind_ = Kind::kNumber;
  j.num_ = value;
  j.integral_ = false;
  return j;
}

Json Json::number(std::int64_t value) {
  Json j;
  j.kind_ = Kind::kNumber;
  j.int_ = value;
  j.integral_ = true;
  return j;
}

Json Json::number(std::uint64_t value) {
  if (value > static_cast<std::uint64_t>(
                  std::numeric_limits<std::int64_t>::max()))
    return number(static_cast<double>(value));
  return number(static_cast<std::int64_t>(value));
}

Json Json::string(std::string_view value) {
  Json j;
  j.kind_ = Kind::kString;
  j.str_ = std::string(value);
  return j;
}

Json Json::array(std::vector<Json> items) {
  Json j;
  j.kind_ = Kind::kArray;
  j.items_ = std::move(items);
  return j;
}

Json Json::object(std::vector<std::pair<std::string, Json>> members) {
  Json j;
  j.kind_ = Kind::kObject;
  j.members_ = std::move(members);
  return j;
}

void Json::push_back(Json item) {
  if (kind_ != Kind::kArray)
    throw std::logic_error("Json::push_back on non-array");
  items_.push_back(std::move(item));
}

void Json::set(std::string key, Json value) {
  if (kind_ != Kind::kObject)
    throw std::logic_error("Json::set on non-object");
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
}

namespace {

void escape_into(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void pad(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out.push_back('\n');
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Json::render(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kNumber: {
      if (integral_) {
        out += std::to_string(int_);
      } else if (std::isfinite(num_)) {
        std::ostringstream os;
        os.precision(15);
        os << num_;
        out += os.str();
      } else {
        out += "null";  // JSON has no Inf/NaN
      }
      break;
    }
    case Kind::kString: escape_into(out, str_); break;
    case Kind::kArray: {
      out.push_back('[');
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i) out.push_back(',');
        pad(out, indent, depth + 1);
        items_[i].render(out, indent, depth + 1);
      }
      if (!items_.empty()) pad(out, indent, depth);
      out.push_back(']');
      break;
    }
    case Kind::kObject: {
      out.push_back('{');
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i) out.push_back(',');
        pad(out, indent, depth + 1);
        escape_into(out, members_[i].first);
        out.push_back(':');
        if (indent > 0) out.push_back(' ');
        members_[i].second.render(out, indent, depth + 1);
      }
      if (!members_.empty()) pad(out, indent, depth);
      out.push_back('}');
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  render(out, indent, 0);
  return out;
}

}  // namespace tracesel::util
