#include "util/framing.hpp"

#include <errno.h>
#include <unistd.h>

#include <charconv>
#include <cstring>

#include "util/atomic_file.hpp"

namespace tracesel::util {

namespace {

void put_u32le(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 24) & 0xFF));
}

void put_u64le(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

std::uint32_t get_u32le(const char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

std::uint64_t get_u64le(const char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

bool to_u64(std::string_view tok, std::uint64_t& out, int base = 10) {
  const char* first = tok.data();
  const char* last = tok.data() + tok.size();
  const auto [ptr, ec] = std::from_chars(first, last, out, base);
  return ec == std::errc{} && ptr == last;
}

}  // namespace

std::string encode_frame(std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  out.append(kFrameMagic, sizeof(kFrameMagic));
  put_u32le(out, static_cast<std::uint32_t>(payload.size()));
  put_u64le(out, fnv1a64(payload));
  out.append(payload);
  return out;
}

Status write_frame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) {
    return Error{ErrorCode::kInternal, "write_frame: payload exceeds cap"};
  }
  const std::string frame = encode_frame(payload);
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = ::write(fd, frame.data() + off, frame.size() - off);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      const char* what = errno == EPIPE ? "write_frame: peer closed (EPIPE)"
                                        : "write_frame: write failed";
      return Error{ErrorCode::kInternal,
                   std::string(what) + ": " + std::strerror(errno)};
    }
    off += static_cast<std::size_t>(n);
  }
  return Status::success();
}

FrameReader::State FrameReader::next(std::string& payload) {
  if (corrupt_) {
    return State::kCorrupt;
  }
  // Validate the magic on whatever prefix has arrived so far: garbage is
  // reported the moment it shows up, not deferred until (and unless) a
  // full header's worth of bytes accumulates.
  const std::size_t have = std::min(buffer_.size(), sizeof(kFrameMagic));
  if (std::memcmp(buffer_.data(), kFrameMagic, have) != 0) {
    corrupt_ = true;
    corrupt_reason_ = "bad frame magic (stream desynchronized)";
    return State::kCorrupt;
  }
  if (buffer_.size() < kFrameHeaderBytes) {
    return State::kNeedMore;
  }
  const std::uint32_t len = get_u32le(buffer_.data() + 8);
  if (len > max_frame_bytes_) {
    corrupt_ = true;
    corrupt_reason_ = "frame length exceeds cap (corrupt length field)";
    return State::kCorrupt;
  }
  if (buffer_.size() < kFrameHeaderBytes + len) {
    return State::kNeedMore;
  }
  const std::uint64_t want = get_u64le(buffer_.data() + 12);
  const std::string_view body(buffer_.data() + kFrameHeaderBytes, len);
  if (fnv1a64(body) != want) {
    corrupt_ = true;
    corrupt_reason_ = "frame checksum mismatch";
    return State::kCorrupt;
  }
  payload.assign(body);
  buffer_.erase(0, kFrameHeaderBytes + len);
  return State::kFrame;
}

// --- text envelopes -----------------------------------------------------

std::string encode_envelope(std::string_view tag, std::uint32_t version,
                            std::string_view payload) {
  char hex[17];
  const std::uint64_t checksum = fnv1a64(payload);
  const auto [end, ec] =
      std::to_chars(hex, hex + sizeof(hex), checksum, 16);
  std::string out;
  out.reserve(tag.size() + 32 + payload.size());
  out.append(tag);
  out.push_back(' ');
  out.append(std::to_string(version));
  out.push_back(' ');
  out.append(hex, static_cast<std::size_t>(end - hex));
  out.push_back('\n');
  out.append(payload);
  return out;
}

Result<std::string_view> decode_envelope(std::string_view text,
                                         std::string_view tag,
                                         std::uint32_t version,
                                         std::string_view subject) {
  const auto bad_header = [&] {
    return Result<std::string_view>::err(
        ErrorCode::kParse,
        std::string(subject) + " line 1: bad envelope header");
  };
  const std::size_t eol = text.find('\n');
  if (eol == std::string_view::npos) return bad_header();
  std::string_view header = text.substr(0, eol);
  if (!header.empty() && header.back() == '\r') header.remove_suffix(1);

  // "<tag> <version> <checksum-hex>", exactly three tokens.
  if (header.substr(0, tag.size()) != tag || header.size() <= tag.size() ||
      header[tag.size()] != ' ')
    return bad_header();
  header.remove_prefix(tag.size() + 1);
  const std::size_t sp = header.find(' ');
  if (sp == std::string_view::npos) return bad_header();
  std::uint64_t got_version = 0;
  std::uint64_t checksum = 0;
  if (!to_u64(header.substr(0, sp), got_version) ||
      !to_u64(header.substr(sp + 1), checksum, 16))
    return bad_header();

  if (got_version != version)
    return Result<std::string_view>::err(
        ErrorCode::kParse,
        std::string(subject) + " version " + std::to_string(got_version) +
            " is not supported (expected " + std::to_string(version) + ")");

  const std::string_view payload = text.substr(eol + 1);
  if (fnv1a64(payload) != checksum)
    return Result<std::string_view>::err(
        ErrorCode::kCorruptCapture,
        std::string(subject) +
            " checksum mismatch (truncated or corrupted file)");
  return payload;
}

}  // namespace tracesel::util
