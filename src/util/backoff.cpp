#include "util/backoff.hpp"

#include <algorithm>
#include <cmath>

namespace tracesel::util {

std::chrono::milliseconds Backoff::next() {
  // Base delay: initial * multiplier^attempt, saturated at the cap. The
  // power is computed in doubles and clamped before the cast so a large
  // attempt count cannot overflow.
  const double grown =
      static_cast<double>(policy_.initial_ms) *
      std::pow(std::max(1.0, policy_.multiplier),
               static_cast<double>(attempt_));
  const double base = std::min(grown, static_cast<double>(policy_.cap_ms));
  ++attempt_;

  double jittered = base;
  if (policy_.jitter > 0.0 && base > 0.0) {
    const double j = std::min(policy_.jitter, 1.0);
    // Uniform in [base*(1-j), base*(1+j)], then re-clamped to the cap so
    // the ceiling is a hard guarantee.
    jittered = base * (1.0 - j + 2.0 * j * rng_.unit());
    jittered = std::min(jittered, static_cast<double>(policy_.cap_ms));
  }
  return std::chrono::milliseconds(
      static_cast<std::int64_t>(std::llround(jittered)));
}

}  // namespace tracesel::util
