#pragma once
// Deterministic pseudo-random number generation for simulation and benches.
//
// All randomized components of the library (transaction scheduling, bug
// manifestation latency, debug investigation order) draw from an explicitly
// seeded Rng so that every experiment in bench/ is bit-reproducible.

#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <vector>

namespace tracesel::util {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference
/// implementation), wrapped as a value type satisfying
/// std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit lanes from a single seed via splitmix64, the
  /// initialization recommended by the xoshiro authors.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    std::uint64_t x = seed;
    for (auto& lane : state_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      lane = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift rejection
  /// method; unbiased. bound must be nonzero.
  std::uint64_t below(std::uint64_t bound) {
    if (bound == 0) throw std::invalid_argument("Rng::below: bound == 0");
    // Rejection threshold for unbiased mapping.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi) {
    if (lo > hi) throw std::invalid_argument("Rng::between: lo > hi");
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double unit() {
    // 53 high bits -> double mantissa.
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with success probability p.
  bool chance(double p) { return unit() < p; }

  /// Picks a uniformly random index of a nonempty container-sized range.
  std::size_t index(std::size_t size) {
    return static_cast<std::size_t>(below(static_cast<std::uint64_t>(size)));
  }

  /// Fisher-Yates shuffle of a span, using this generator.
  template <typename T>
  void shuffle(std::span<T> items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::swap(items[i - 1], items[index(i)]);
    }
  }

  template <typename T>
  void shuffle(std::vector<T>& items) {
    shuffle(std::span<T>(items));
  }

  /// Derives an independent child generator; convenient for giving each
  /// subsystem its own stream without correlated draws.
  Rng fork() { return Rng((*this)() ^ 0xD1B54A32D192ED03ull); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace tracesel::util
