#include "util/obs.hpp"

#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <bit>
#include <cctype>
#include <charconv>
#include <chrono>
#include <fstream>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "util/atomic_file.hpp"
#include "util/framing.hpp"
#include "util/log.hpp"

namespace tracesel::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

using Clock = std::chrono::steady_clock;

/// Hard cap on buffered events per thread: past it spans are dropped (and
/// counted in the snapshot) instead of growing memory without bound.
constexpr std::size_t kMaxEventsPerThread = std::size_t{1} << 20;

constexpr std::uint64_t kNoMin = ~std::uint64_t{0};

std::int64_t clock_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

struct HistShard {
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> sum{0};
  std::atomic<std::uint64_t> min{kNoMin};
  std::atomic<std::uint64_t> max{0};
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
};

/// One thread's private metric block. The owner thread is the only writer
/// of the atomics (relaxed), snapshot readers merge them concurrently;
/// the event vector is guarded by its own mutex because it reallocates.
struct ThreadShard {
  std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
  std::array<HistShard, kMaxHistograms> hists{};
  std::mutex events_mu;
  std::vector<TraceEvent> events;
  std::uint64_t events_dropped = 0;  // guarded by events_mu
  std::uint32_t tid = 0;
  std::uint32_t depth = 0;  // owner thread only
  /// Ids of the open spans on this thread, innermost last (owner thread
  /// only) — a new span parents under the top, or under the process-global
  /// TraceContext when the stack is empty.
  std::vector<std::uint64_t> span_stack;
};

struct HistTotals {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = kNoMin;
  std::uint64_t max = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
};

/// The backing store behind the MetricsRegistry facade. Lock order:
/// state.mu before any shard's events_mu.
struct State {
  mutable std::mutex mu;

  // Append-only name tables; ids handed out stay valid for the process
  // lifetime (reset() clears values, never names).
  std::unordered_map<std::string, std::uint32_t> counter_ids;
  std::unordered_map<std::string, std::uint32_t> gauge_ids;
  std::unordered_map<std::string, std::uint32_t> hist_ids;
  std::vector<std::string> counter_names;
  std::vector<std::string> gauge_names;
  std::vector<std::string> hist_names;

  std::array<std::atomic<std::int64_t>, kMaxGauges> gauges{};

  std::vector<ThreadShard*> shards;  // live threads
  std::uint32_t next_tid = 0;

  // Folded-in contributions of exited threads (guarded by mu).
  std::array<std::uint64_t, kMaxCounters> retired_counters{};
  std::array<HistTotals, kMaxHistograms> retired_hists{};
  std::vector<TraceEvent> retired_events;
  std::uint64_t retired_events_dropped = 0;

  /// Trace epoch as steady-clock nanoseconds, atomic so Span never takes
  /// the registry mutex on the hot path.
  std::atomic<std::int64_t> epoch_ns{clock_now_ns()};

  // Cross-process trace identity (atomics: Span reads these on the hot
  // path). Span ids are splitmix64 of a per-process seed plus a sequence
  // number — unique within a process, collision-unlikely across the
  // processes of one distributed trace.
  std::atomic<std::uint64_t> trace_id{0};
  std::atomic<std::uint64_t> parent_span{0};
  std::atomic<std::uint64_t> next_span{1};
  std::uint64_t span_seed =
      splitmix64(static_cast<std::uint64_t>(::getpid()) ^
                 static_cast<std::uint64_t>(clock_now_ns()));

  std::string label = "tracesel";  // guarded by mu

  /// Remote processes' telemetry, rebased onto the local epoch at adopt
  /// time (guarded by mu; cleared by reset()).
  std::vector<ProcessTelemetry> adopted;

  ThreadShard* attach() {
    auto* shard = new ThreadShard;
    std::lock_guard<std::mutex> lk(mu);
    shard->tid = next_tid++;
    shards.push_back(shard);
    return shard;
  }

  void detach(ThreadShard* shard) {
    std::lock_guard<std::mutex> lk(mu);
    for (std::size_t i = 0; i < kMaxCounters; ++i)
      retired_counters[i] += shard->counters[i].load(std::memory_order_relaxed);
    for (std::size_t h = 0; h < kMaxHistograms; ++h)
      merge_hist(retired_hists[h], shard->hists[h]);
    {
      std::lock_guard<std::mutex> elk(shard->events_mu);
      retired_events.insert(retired_events.end(), shard->events.begin(),
                            shard->events.end());
      retired_events_dropped += shard->events_dropped;
    }
    shards.erase(std::find(shards.begin(), shards.end(), shard));
    delete shard;
  }

  static void merge_hist(HistTotals& into, const HistShard& from) {
    into.count += from.count.load(std::memory_order_relaxed);
    into.sum += from.sum.load(std::memory_order_relaxed);
    into.min = std::min(into.min, from.min.load(std::memory_order_relaxed));
    into.max = std::max(into.max, from.max.load(std::memory_order_relaxed));
    for (std::size_t b = 0; b < kHistogramBuckets; ++b)
      into.buckets[b] += from.buckets[b].load(std::memory_order_relaxed);
  }
};

State& state() {
  // Leaked on purpose: worker threads may detach during static
  // destruction, after main() has returned.
  static State* s = new State;
  return *s;
}

// Construct the state (and with it the trace epoch) during static
// initialization, not at first metric use: process_wall_ms() must measure
// from process start even when the first obs call is a final
// update_process_gauges() stamping a bench result.
[[maybe_unused]] const State& g_eager_state = state();

/// RAII registration of the calling thread's shard; the destructor folds
/// the shard into the retired accumulators at thread exit.
struct ShardHandle {
  ThreadShard* shard;
  ShardHandle() : shard(state().attach()) {}
  ~ShardHandle() { state().detach(shard); }
};

ThreadShard& local_shard() {
  thread_local ShardHandle handle;
  return *handle.shard;
}

std::uint32_t register_name(std::unordered_map<std::string, std::uint32_t>& ids,
                            std::vector<std::string>& names,
                            std::size_t capacity, std::string_view name,
                            const char* kind) {
  const auto it = ids.find(std::string(name));
  if (it != ids.end()) return it->second;
  if (names.size() >= capacity)
    throw std::length_error(std::string("obs::MetricsRegistry: ") + kind +
                            " capacity exceeded registering '" +
                            std::string(name) + "'");
  const auto id = static_cast<std::uint32_t>(names.size());
  names.emplace_back(name);
  ids.emplace(names.back(), id);
  return id;
}

}  // namespace

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

std::uint32_t histogram_bucket(std::uint64_t value) {
  return value == 0 ? 0u : static_cast<std::uint32_t>(std::bit_width(value));
}

MetricsRegistry& registry() {
  static MetricsRegistry facade;
  state();  // make sure the backing store outlives any first use
  return facade;
}

CounterId MetricsRegistry::counter(std::string_view name) {
  State& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  return CounterId{register_name(s.counter_ids, s.counter_names, kMaxCounters,
                                 name, "counter")};
}

GaugeId MetricsRegistry::gauge(std::string_view name) {
  State& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  return GaugeId{
      register_name(s.gauge_ids, s.gauge_names, kMaxGauges, name, "gauge")};
}

HistogramId MetricsRegistry::histogram(std::string_view name) {
  State& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  return HistogramId{register_name(s.hist_ids, s.hist_names, kMaxHistograms,
                                   name, "histogram")};
}

void MetricsRegistry::add(CounterId id, std::uint64_t delta) {
  local_shard().counters[id.index].fetch_add(delta,
                                             std::memory_order_relaxed);
}

void MetricsRegistry::set(GaugeId id, std::int64_t value) {
  state().gauges[id.index].store(value, std::memory_order_relaxed);
}

void MetricsRegistry::set_max(GaugeId id, std::int64_t value) {
  auto& gauge = state().gauges[id.index];
  std::int64_t seen = gauge.load(std::memory_order_relaxed);
  while (value > seen &&
         !gauge.compare_exchange_weak(seen, value,
                                      std::memory_order_relaxed)) {
  }
}

void MetricsRegistry::observe(HistogramId id, std::uint64_t value) {
  HistShard& h = local_shard().hists[id.index];
  h.count.fetch_add(1, std::memory_order_relaxed);
  h.sum.fetch_add(value, std::memory_order_relaxed);
  // The owner thread is the only writer, so load-compare-store is enough.
  if (value < h.min.load(std::memory_order_relaxed))
    h.min.store(value, std::memory_order_relaxed);
  if (value > h.max.load(std::memory_order_relaxed))
    h.max.store(value, std::memory_order_relaxed);
  h.buckets[histogram_bucket(value)].fetch_add(1, std::memory_order_relaxed);
}

std::vector<std::pair<std::string, std::uint64_t>>
MetricsRegistry::thread_counter_values() const {
  State& s = state();
  ThreadShard& shard = local_shard();
  std::vector<std::pair<std::string, std::uint64_t>> values;
  std::lock_guard<std::mutex> lk(s.mu);  // the name table may grow
  for (std::size_t i = 0; i < s.counter_names.size(); ++i) {
    const std::uint64_t v = shard.counters[i].load(std::memory_order_relaxed);
    if (v != 0) values.emplace_back(s.counter_names[i], v);
  }
  return values;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  State& s = state();
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lk(s.mu);

  std::vector<std::uint64_t> counter_totals(s.counter_names.size(), 0);
  for (std::size_t i = 0; i < counter_totals.size(); ++i)
    counter_totals[i] = s.retired_counters[i];

  auto split_of = [&](std::string label,
                      const auto& value_at) {
    std::vector<std::pair<std::string, std::uint64_t>> values;
    for (std::size_t i = 0; i < s.counter_names.size(); ++i) {
      const std::uint64_t v = value_at(i);
      if (v != 0) values.emplace_back(s.counter_names[i], v);
    }
    if (!values.empty())
      snap.per_thread_counters.emplace_back(std::move(label),
                                            std::move(values));
  };

  for (const ThreadShard* shard : s.shards) {
    std::string label = "t";
    label += std::to_string(shard->tid);
    split_of(std::move(label), [&](std::size_t i) {
      return shard->counters[i].load(std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < counter_totals.size(); ++i)
      counter_totals[i] +=
          shard->counters[i].load(std::memory_order_relaxed);
  }
  split_of("retired", [&](std::size_t i) { return s.retired_counters[i]; });

  for (std::size_t i = 0; i < s.counter_names.size(); ++i)
    snap.counters.emplace_back(s.counter_names[i], counter_totals[i]);
  for (std::size_t i = 0; i < s.gauge_names.size(); ++i)
    snap.gauges.emplace_back(s.gauge_names[i],
                             s.gauges[i].load(std::memory_order_relaxed));

  for (std::size_t h = 0; h < s.hist_names.size(); ++h) {
    HistTotals totals = s.retired_hists[h];
    for (const ThreadShard* shard : s.shards)
      State::merge_hist(totals, shard->hists[h]);
    HistogramSnapshot hs;
    hs.name = s.hist_names[h];
    hs.count = totals.count;
    hs.sum = totals.sum;
    hs.min = totals.count == 0 ? 0 : totals.min;
    hs.max = totals.max;
    hs.buckets.assign(totals.buckets.begin(), totals.buckets.end());
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  const MetricsSnapshot snap = snapshot();
  for (const auto& [n, v] : snap.counters)
    if (n == name) return v;
  return 0;
}

std::int64_t MetricsRegistry::gauge_value(std::string_view name) const {
  const MetricsSnapshot snap = snapshot();
  for (const auto& [n, v] : snap.gauges)
    if (n == name) return v;
  return 0;
}

std::optional<HistogramSnapshot> MetricsRegistry::histogram_snapshot(
    std::string_view name) const {
  MetricsSnapshot snap = snapshot();
  for (auto& h : snap.histograms)
    if (h.name == name) return std::move(h);
  return std::nullopt;
}

void reset() {
  State& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  s.retired_counters.fill(0);
  s.retired_hists.fill(HistTotals{});
  s.retired_events.clear();
  s.retired_events_dropped = 0;
  for (auto& g : s.gauges) g.store(0, std::memory_order_relaxed);
  for (ThreadShard* shard : s.shards) {
    for (auto& c : shard->counters) c.store(0, std::memory_order_relaxed);
    for (auto& h : shard->hists) {
      h.count.store(0, std::memory_order_relaxed);
      h.sum.store(0, std::memory_order_relaxed);
      h.min.store(kNoMin, std::memory_order_relaxed);
      h.max.store(0, std::memory_order_relaxed);
      for (auto& b : h.buckets) b.store(0, std::memory_order_relaxed);
    }
    std::lock_guard<std::mutex> elk(shard->events_mu);
    shard->events.clear();
    shard->events_dropped = 0;
  }
  s.adopted.clear();
  s.epoch_ns.store(clock_now_ns(), std::memory_order_relaxed);
}

// --- trace context ----------------------------------------------------

void set_trace_context(TraceContext ctx) {
  State& s = state();
  s.trace_id.store(ctx.trace_id, std::memory_order_relaxed);
  s.parent_span.store(ctx.parent_span_id, std::memory_order_relaxed);
}

TraceContext trace_context() {
  State& s = state();
  TraceContext ctx;
  ctx.trace_id = s.trace_id.load(std::memory_order_relaxed);
  ctx.parent_span_id = s.parent_span.load(std::memory_order_relaxed);
  return ctx;
}

TraceContext ensure_trace_context() {
  State& s = state();
  std::uint64_t id = s.trace_id.load(std::memory_order_relaxed);
  if (id == 0) {
    std::uint64_t fresh = splitmix64(
        s.span_seed ^ s.next_span.fetch_add(1, std::memory_order_relaxed));
    if (fresh == 0) fresh = 1;
    // First writer wins: a concurrent ensure keeps the installed id.
    if (s.trace_id.compare_exchange_strong(id, fresh,
                                           std::memory_order_relaxed))
      id = fresh;
  }
  TraceContext ctx;
  ctx.trace_id = id;
  ctx.parent_span_id = s.parent_span.load(std::memory_order_relaxed);
  return ctx;
}

std::uint64_t current_span_id() {
  if (!enabled()) return 0;
  ThreadShard& shard = local_shard();
  return shard.span_stack.empty() ? 0 : shard.span_stack.back();
}

void set_process_label(std::string_view label) {
  State& s = state();
  std::string normalized(label);
  std::replace(normalized.begin(), normalized.end(), ' ', '_');
  if (normalized.empty()) normalized = "tracesel";
  std::lock_guard<std::mutex> lk(s.mu);
  s.label = std::move(normalized);
}

std::string process_label() {
  State& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  return s.label;
}

// --- spans and trace export -------------------------------------------

void Span::begin(const char* name, std::uint64_t parent_override) {
  name_ = name;
  State& s = state();
  ThreadShard& shard = local_shard();
  depth_ = shard.depth++;
  span_id_ = splitmix64(
      s.span_seed + s.next_span.fetch_add(1, std::memory_order_relaxed));
  if (span_id_ == 0) span_id_ = 1;
  parent_id_ = parent_override != 0 ? parent_override
               : !shard.span_stack.empty()
                   ? shard.span_stack.back()
                   : s.parent_span.load(std::memory_order_relaxed);
  shard.span_stack.push_back(span_id_);
  const std::int64_t epoch = s.epoch_ns.load(std::memory_order_relaxed);
  start_ns_ = static_cast<std::uint64_t>(clock_now_ns() - epoch);
}

void Span::end() {
  ThreadShard& shard = local_shard();
  if (shard.depth > 0) --shard.depth;
  if (!shard.span_stack.empty()) shard.span_stack.pop_back();

  const std::int64_t epoch =
      state().epoch_ns.load(std::memory_order_relaxed);
  const auto now_ns = static_cast<std::uint64_t>(clock_now_ns() - epoch);
  // A reset() between begin and end restarts the epoch; clamp rather than
  // underflow.
  const std::uint64_t dur =
      now_ns >= start_ns_ ? now_ns - start_ns_ : 0;

  TraceEvent event;
  event.name = name_;
  event.ts_ns = now_ns - dur;
  event.dur_ns = dur;
  event.tid = shard.tid;
  event.depth = depth_;
  event.span_id = span_id_;
  event.parent_id = parent_id_;
  {
    std::lock_guard<std::mutex> lk(shard.events_mu);
    if (shard.events.size() < kMaxEventsPerThread)
      shard.events.push_back(event);
    else
      ++shard.events_dropped;
  }

  // Mirror the latency into "span.<name>" so the metrics JSON carries the
  // distribution without re-parsing the trace.
  registry().observe(
      registry().histogram(std::string("span.") + name_), dur);
}

std::vector<TraceEvent> trace_events() {
  State& s = state();
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lk(s.mu);
    events = s.retired_events;
    for (ThreadShard* shard : s.shards) {
      std::lock_guard<std::mutex> elk(shard->events_mu);
      events.insert(events.end(), shard->events.begin(),
                    shard->events.end());
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
              if (a.depth != b.depth) return a.depth < b.depth;
              return a.tid < b.tid;
            });
  return events;
}

std::size_t thread_events_mark() {
  ThreadShard& shard = local_shard();
  std::lock_guard<std::mutex> lk(shard.events_mu);
  return shard.events.size();
}

std::vector<TraceEvent> thread_events_since(std::size_t mark) {
  ThreadShard& shard = local_shard();
  std::lock_guard<std::mutex> lk(shard.events_mu);
  // A reset() between mark and collect shrank the buffer below the mark;
  // report empty rather than a stale window.
  if (mark >= shard.events.size()) return {};
  return std::vector<TraceEvent>(shard.events.begin() +
                                     static_cast<std::ptrdiff_t>(mark),
                                 shard.events.end());
}

// --- cross-process telemetry ------------------------------------------

void merge_histogram(HistogramSnapshot& into, const HistogramSnapshot& from) {
  if (into.buckets.size() < from.buckets.size())
    into.buckets.resize(from.buckets.size(), 0);
  for (std::size_t b = 0; b < from.buckets.size(); ++b)
    into.buckets[b] += from.buckets[b];
  if (from.count == 0) return;  // an empty side's reported-0 min is a
                                // sentinel, not a sample
  into.min = into.count == 0 ? from.min : std::min(into.min, from.min);
  into.max = std::max(into.max, from.max);
  into.count += from.count;
  into.sum += from.sum;
}

void merge_metrics(MetricsSnapshot& into, const MetricsSnapshot& from) {
  for (const auto& [name, value] : from.counters) {
    bool found = false;
    for (auto& [n, v] : into.counters)
      if (n == name) {
        v += value;
        found = true;
        break;
      }
    if (!found) into.counters.emplace_back(name, value);
  }
  // Gauges are level readings (peak RSS, product states); across
  // processes the high-water mark is the meaningful aggregate.
  for (const auto& [name, value] : from.gauges) {
    bool found = false;
    for (auto& [n, v] : into.gauges)
      if (n == name) {
        v = std::max(v, value);
        found = true;
        break;
      }
    if (!found) into.gauges.emplace_back(name, value);
  }
  for (const HistogramSnapshot& h : from.histograms) {
    bool found = false;
    for (HistogramSnapshot& target : into.histograms)
      if (target.name == h.name) {
        merge_histogram(target, h);
        found = true;
        break;
      }
    if (!found) into.histograms.push_back(h);
  }
  // per_thread_counters stay process-local: thread ids from different
  // processes are unrelated namespaces.
}

std::int64_t trace_epoch_ns() {
  return state().epoch_ns.load(std::memory_order_relaxed);
}

ProcessTelemetry capture_telemetry() {
  ProcessTelemetry t;
  t.label = process_label();
  t.pid = static_cast<std::uint64_t>(::getpid());
  t.epoch_ns = state().epoch_ns.load(std::memory_order_relaxed);
  t.metrics = registry().snapshot();
  t.metrics.per_thread_counters.clear();  // does not travel
  for (const TraceEvent& e : trace_events()) {
    WireTraceEvent w;
    w.name = e.name;
    w.ts_ns = e.ts_ns;
    w.dur_ns = e.dur_ns;
    w.tid = e.tid;
    w.depth = e.depth;
    w.span_id = e.span_id;
    w.parent_id = e.parent_id;
    t.events.push_back(std::move(w));
  }
  return t;
}

namespace {

constexpr std::string_view kTelemetryTag = "tracesel-telemetry";

/// Metric names are dotted identifiers; a space would desynchronize the
/// token-based parser, so normalize defensively on encode.
std::string wire_name(std::string_view name) {
  std::string out(name);
  std::replace(out.begin(), out.end(), ' ', '_');
  if (out.empty()) out = "_";
  return out;
}

template <typename T>
bool parse_number(std::string_view token, T& out) {
  if (token.empty()) return false;
  const char* first = token.data();
  const char* last = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last;
}

/// Splits `line` into at most `max_fields` whitespace-separated tokens;
/// the last token absorbs the rest of the line (event names).
std::vector<std::string_view> split_fields(std::string_view line,
                                           std::size_t max_fields) {
  std::vector<std::string_view> fields;
  std::size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() && line[pos] == ' ') ++pos;
    if (pos >= line.size()) break;
    if (fields.size() + 1 == max_fields) {
      fields.push_back(line.substr(pos));
      break;
    }
    std::size_t end = line.find(' ', pos);
    if (end == std::string_view::npos) end = line.size();
    fields.push_back(line.substr(pos, end - pos));
    pos = end;
  }
  return fields;
}

util::Error telemetry_error(std::size_t line_no, const std::string& what) {
  return util::Error{util::ErrorCode::kParse,
                     "telemetry line " + std::to_string(line_no) + ": " +
                         what};
}

}  // namespace

std::string serialize_telemetry(const ProcessTelemetry& telemetry) {
  std::string body;
  body += "process ";
  body += wire_name(telemetry.label);
  body += ' ';
  body += std::to_string(telemetry.pid);
  body += ' ';
  body += std::to_string(telemetry.epoch_ns);
  body += '\n';
  for (const auto& [name, value] : telemetry.metrics.counters) {
    if (value == 0) continue;
    body += "counter ";
    body += wire_name(name);
    body += ' ';
    body += std::to_string(value);
    body += '\n';
  }
  for (const auto& [name, value] : telemetry.metrics.gauges) {
    if (value == 0) continue;
    body += "gauge ";
    body += wire_name(name);
    body += ' ';
    body += std::to_string(value);
    body += '\n';
  }
  for (const HistogramSnapshot& h : telemetry.metrics.histograms) {
    if (h.count == 0) continue;
    body += "hist ";
    body += wire_name(h.name);
    body += ' ';
    body += std::to_string(h.count);
    body += ' ';
    body += std::to_string(h.sum);
    body += ' ';
    body += std::to_string(h.min);
    body += ' ';
    body += std::to_string(h.max);
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (h.buckets[b] == 0) continue;
      body += ' ';
      body += std::to_string(b);
      body += ':';
      body += std::to_string(h.buckets[b]);
    }
    body += '\n';
  }
  for (const WireTraceEvent& e : telemetry.events) {
    body += "event ";
    body += std::to_string(e.ts_ns);
    body += ' ';
    body += std::to_string(e.dur_ns);
    body += ' ';
    body += std::to_string(e.tid);
    body += ' ';
    body += std::to_string(e.depth);
    body += ' ';
    body += std::to_string(e.span_id);
    body += ' ';
    body += std::to_string(e.parent_id);
    body += ' ';
    body += e.name.empty() ? std::string("_") : e.name;
    body += '\n';
  }
  body += "end\n";
  return util::encode_envelope(kTelemetryTag, kTelemetryVersion, body);
}

util::Result<ProcessTelemetry> parse_telemetry(std::string_view wire) {
  auto payload = util::decode_envelope(wire, kTelemetryTag,
                                       kTelemetryVersion, "telemetry");
  if (!payload.ok()) return payload.error();

  ProcessTelemetry out;
  bool saw_process = false;
  bool saw_end = false;
  std::string_view rest = payload.value();
  std::size_t line_no = 1;  // line 1 is the envelope header
  while (!rest.empty()) {
    ++line_no;
    std::size_t eol = rest.find('\n');
    if (eol == std::string_view::npos)
      return telemetry_error(line_no, "truncated (missing newline)");
    const std::string_view line = rest.substr(0, eol);
    rest.remove_prefix(eol + 1);
    if (line.empty()) continue;
    if (saw_end)
      return telemetry_error(line_no, "content after 'end'");
    if (line == "end") {
      saw_end = true;
      continue;
    }

    const std::size_t key_end = line.find(' ');
    const std::string_view key =
        key_end == std::string_view::npos ? line : line.substr(0, key_end);
    if (!saw_process && key != "process")
      return telemetry_error(line_no, "expected 'process' first");

    if (key == "process") {
      if (saw_process)
        return telemetry_error(line_no, "duplicate 'process'");
      const auto f = split_fields(line, 4);
      if (f.size() != 4) return telemetry_error(line_no, "bad 'process'");
      out.label = std::string(f[1]);
      if (!parse_number(f[2], out.pid) || !parse_number(f[3], out.epoch_ns))
        return telemetry_error(line_no, "bad 'process' numbers");
      saw_process = true;
    } else if (key == "counter") {
      const auto f = split_fields(line, 3);
      std::uint64_t value = 0;
      if (f.size() != 3 || !parse_number(f[2], value))
        return telemetry_error(line_no, "bad 'counter'");
      out.metrics.counters.emplace_back(std::string(f[1]), value);
    } else if (key == "gauge") {
      const auto f = split_fields(line, 3);
      std::int64_t value = 0;
      if (f.size() != 3 || !parse_number(f[2], value))
        return telemetry_error(line_no, "bad 'gauge'");
      out.metrics.gauges.emplace_back(std::string(f[1]), value);
    } else if (key == "hist") {
      // Unbounded trailing idx:count pairs: split without a field cap.
      const auto f = split_fields(line, line.size());
      if (f.size() < 6) return telemetry_error(line_no, "bad 'hist'");
      HistogramSnapshot h;
      h.name = std::string(f[1]);
      if (!parse_number(f[2], h.count) || !parse_number(f[3], h.sum) ||
          !parse_number(f[4], h.min) || !parse_number(f[5], h.max))
        return telemetry_error(line_no, "bad 'hist' numbers");
      h.buckets.assign(kHistogramBuckets, 0);
      for (std::size_t i = 6; i < f.size(); ++i) {
        const std::size_t colon = f[i].find(':');
        std::uint64_t idx = 0;
        std::uint64_t count = 0;
        if (colon == std::string_view::npos ||
            !parse_number(f[i].substr(0, colon), idx) ||
            !parse_number(f[i].substr(colon + 1), count) ||
            idx >= kHistogramBuckets)
          return telemetry_error(line_no, "bad 'hist' bucket");
        h.buckets[idx] += count;
      }
      out.metrics.histograms.push_back(std::move(h));
    } else if (key == "event") {
      const auto f = split_fields(line, 8);
      if (f.size() != 8) return telemetry_error(line_no, "bad 'event'");
      WireTraceEvent e;
      if (!parse_number(f[1], e.ts_ns) || !parse_number(f[2], e.dur_ns) ||
          !parse_number(f[3], e.tid) || !parse_number(f[4], e.depth) ||
          !parse_number(f[5], e.span_id) ||
          !parse_number(f[6], e.parent_id))
        return telemetry_error(line_no, "bad 'event' numbers");
      e.name = std::string(f[7]);
      out.events.push_back(std::move(e));
    } else {
      // Strict by design: an unknown key means version skew that the
      // envelope version failed to catch, or corruption.
      return telemetry_error(line_no,
                             "unknown key '" + std::string(key) + "'");
    }
  }
  if (!saw_process)
    return telemetry_error(line_no, "missing 'process' line");
  if (!saw_end) return telemetry_error(line_no, "missing 'end'");
  return out;
}

void adopt_remote_telemetry(ProcessTelemetry remote) {
  State& s = state();
  const std::int64_t local_epoch =
      s.epoch_ns.load(std::memory_order_relaxed);
  // Steady clock is machine-wide, so the epoch difference is the exact
  // offset between the two processes' timelines. Clamp at 0: a remote
  // event can predate the local epoch only across a reset().
  const std::int64_t offset = remote.epoch_ns - local_epoch;
  for (WireTraceEvent& e : remote.events) {
    const std::int64_t rebased = static_cast<std::int64_t>(e.ts_ns) + offset;
    e.ts_ns = rebased > 0 ? static_cast<std::uint64_t>(rebased) : 0;
  }
  remote.epoch_ns = local_epoch;

  std::lock_guard<std::mutex> lk(s.mu);
  for (ProcessTelemetry& lane : s.adopted) {
    if (lane.pid == remote.pid && lane.label == remote.label) {
      // Repeat adoption (a worker reporting per-unit): one lane, summed
      // metrics, appended events.
      merge_metrics(lane.metrics, remote.metrics);
      lane.events.insert(lane.events.end(),
                         std::make_move_iterator(remote.events.begin()),
                         std::make_move_iterator(remote.events.end()));
      return;
    }
  }
  s.adopted.push_back(std::move(remote));
}

std::vector<ProcessTelemetry> adopted_telemetry() {
  State& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  return s.adopted;
}

namespace {

std::string hex_id(std::uint64_t id) {
  // Span ids are emitted as hex strings: a raw uint64 exceeds the exact
  // integer range of a JSON double.
  char buf[19];
  buf[0] = '0';
  buf[1] = 'x';
  const auto [end, ec] = std::to_chars(buf + 2, buf + sizeof(buf), id, 16);
  (void)ec;
  return std::string(buf, static_cast<std::size_t>(end - buf));
}

void append_process_meta(util::Json& events, std::int64_t pid,
                         const std::string& name) {
  // Process/thread metadata rows make the Perfetto timeline readable.
  util::Json meta = util::Json::object();
  meta.set("ph", util::Json::string("M"));
  meta.set("pid", util::Json::number(pid));
  meta.set("name", util::Json::string("process_name"));
  util::Json args = util::Json::object();
  args.set("name", util::Json::string(name));
  meta.set("args", std::move(args));
  events.push_back(std::move(meta));
}

void append_trace_event(util::Json& events, std::int64_t pid,
                        const std::string& name, std::uint64_t ts_ns,
                        std::uint64_t dur_ns, std::uint32_t tid,
                        std::uint32_t depth, std::uint64_t span_id,
                        std::uint64_t parent_id) {
  util::Json je = util::Json::object();
  je.set("name", util::Json::string(name));
  je.set("cat", util::Json::string("tracesel"));
  je.set("ph", util::Json::string("X"));
  je.set("pid", util::Json::number(pid));
  je.set("tid", util::Json::number(std::uint64_t{tid}));
  // Chrome trace timestamps are microseconds.
  je.set("ts", util::Json::number(static_cast<double>(ts_ns) / 1000.0));
  je.set("dur", util::Json::number(static_cast<double>(dur_ns) / 1000.0));
  util::Json args = util::Json::object();
  args.set("depth", util::Json::number(std::uint64_t{depth}));
  if (span_id != 0) args.set("span", util::Json::string(hex_id(span_id)));
  if (parent_id != 0)
    args.set("parent", util::Json::string(hex_id(parent_id)));
  je.set("args", std::move(args));
  events.push_back(std::move(je));
}

}  // namespace

util::Json chrome_trace_json() {
  util::Json events = util::Json::array();
  // Lane pid 1 is this process; adopted remote processes follow in
  // adoption order. Their events were rebased onto the local epoch at
  // adopt time, so one shared timeline is correct as-is.
  append_process_meta(events, 1, process_label());
  const std::vector<ProcessTelemetry> remote = adopted_telemetry();
  for (std::size_t i = 0; i < remote.size(); ++i) {
    std::string name = remote[i].label;
    name += " #";
    name += std::to_string(remote[i].pid);
    append_process_meta(events, static_cast<std::int64_t>(2 + i), name);
  }
  for (const TraceEvent& e : trace_events())
    append_trace_event(events, 1, e.name, e.ts_ns, e.dur_ns, e.tid, e.depth,
                       e.span_id, e.parent_id);
  for (std::size_t i = 0; i < remote.size(); ++i)
    for (const WireTraceEvent& e : remote[i].events)
      append_trace_event(events, static_cast<std::int64_t>(2 + i), e.name,
                         e.ts_ns, e.dur_ns, e.tid, e.depth, e.span_id,
                         e.parent_id);
  util::Json out = util::Json::object();
  out.set("displayTimeUnit", util::Json::string("ms"));
  out.set("traceEvents", std::move(events));
  return out;
}

util::Json metrics_json() {
  update_process_gauges();
  MetricsSnapshot snap = registry().snapshot();

  // With adopted remote telemetry the top-level blocks become the
  // cross-process aggregate; "per_process" keeps the per-lane counters.
  const std::vector<ProcessTelemetry> remote = adopted_telemetry();
  util::Json per_process = util::Json::object();
  if (!remote.empty()) {
    auto counters_of = [](const MetricsSnapshot& m) {
      util::Json jc = util::Json::object();
      for (const auto& [name, value] : m.counters)
        if (value != 0) jc.set(name, util::Json::number(value));
      return jc;
    };
    per_process.set(process_label() + " #" + std::to_string(::getpid()),
                    counters_of(snap));
    for (const ProcessTelemetry& lane : remote) {
      per_process.set(lane.label + " #" + std::to_string(lane.pid),
                      counters_of(lane.metrics));
      merge_metrics(snap, lane.metrics);
    }
  }

  util::Json counters = util::Json::object();
  for (const auto& [name, value] : snap.counters)
    counters.set(name, util::Json::number(value));

  util::Json gauges = util::Json::object();
  for (const auto& [name, value] : snap.gauges)
    gauges.set(name, util::Json::number(value));

  util::Json hists = util::Json::object();
  for (const HistogramSnapshot& h : snap.histograms) {
    util::Json jh = util::Json::object();
    jh.set("count", util::Json::number(h.count));
    jh.set("sum", util::Json::number(h.sum));
    jh.set("min", util::Json::number(h.min));
    jh.set("max", util::Json::number(h.max));
    jh.set("mean", util::Json::number(
                       h.count == 0 ? 0.0
                                    : static_cast<double>(h.sum) /
                                          static_cast<double>(h.count)));
    util::Json buckets = util::Json::array();
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (h.buckets[b] == 0) continue;
      util::Json jb = util::Json::object();
      // Bucket b >= 1 holds values in [2^(b-1), 2^b); report the upper
      // bound, log-scale.
      jb.set("lt", util::Json::number(
                       b == 0 ? std::uint64_t{1} : std::uint64_t{1} << b));
      jb.set("count", util::Json::number(h.buckets[b]));
      buckets.push_back(std::move(jb));
    }
    jh.set("buckets", std::move(buckets));
    hists.set(h.name, std::move(jh));
  }

  util::Json per_thread = util::Json::object();
  for (const auto& [label, values] : snap.per_thread_counters) {
    util::Json jt = util::Json::object();
    for (const auto& [name, value] : values)
      jt.set(name, util::Json::number(value));
    per_thread.set(label, std::move(jt));
  }

  util::Json process = util::Json::object();
  process.set("peak_rss_kb",
              util::Json::number(static_cast<std::int64_t>(peak_rss_kb())));
  process.set("wall_ms", util::Json::number(process_wall_ms()));

  util::Json out = util::Json::object();
  out.set("process", std::move(process));
  out.set("counters", std::move(counters));
  out.set("gauges", std::move(gauges));
  out.set("histograms", std::move(hists));
  out.set("per_thread_counters", std::move(per_thread));
  if (!remote.empty()) out.set("per_process", std::move(per_process));
  return out;
}

std::string prometheus_text() {
  update_process_gauges();
  MetricsSnapshot snap = registry().snapshot();
  for (const ProcessTelemetry& lane : adopted_telemetry())
    merge_metrics(snap, lane.metrics);

  auto prom_name = [](std::string_view name) {
    std::string out = "tracesel_";
    for (const char c : name)
      out += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
    return out;
  };

  std::string text;
  for (const auto& [name, value] : snap.counters) {
    const std::string n = prom_name(name);
    text += "# TYPE " + n + " counter\n";
    text += n + ' ' + std::to_string(value) + '\n';
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string n = prom_name(name);
    text += "# TYPE " + n + " gauge\n";
    text += n + ' ' + std::to_string(value) + '\n';
  }
  for (const HistogramSnapshot& h : snap.histograms) {
    const std::string n = prom_name(h.name);
    text += "# TYPE " + n + " histogram\n";
    // Our buckets are log-scale and exclusive upper ([2^(b-1), 2^b));
    // Prometheus buckets are cumulative with inclusive le, so le = 2^b - 1
    // holds exactly our buckets 0..b.
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (h.buckets[b] == 0) continue;
      cumulative += h.buckets[b];
      const std::uint64_t le =
          b == 0 ? 0 : (b >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << b) - 1);
      text += n + "_bucket{le=\"" + std::to_string(le) + "\"} " +
              std::to_string(cumulative) + '\n';
    }
    text += n + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + '\n';
    text += n + "_sum " + std::to_string(h.sum) + '\n';
    text += n + "_count " + std::to_string(h.count) + '\n';
  }
  return text;
}

namespace {

bool write_json(const util::Json& json, const std::string& path,
                const char* what) {
  // Temp+rename: a run killed mid-flush (SIGINT after a cancel request,
  // node preemption) must never leave a truncated half-JSON sink behind.
  const util::Status st = util::atomic_write_file(path, json.dump(2) + '\n');
  if (!st.ok()) {
    util::Log(util::LogLevel::kError)
        << "obs: cannot write " << what << " to '" << path
        << "': " << st.error().to_string();
    return false;
  }
  return true;
}

}  // namespace

bool write_chrome_trace(const std::string& path) {
  return write_json(chrome_trace_json(), path, "Chrome trace");
}

bool write_metrics(const std::string& path) {
  return write_json(metrics_json(), path, "metrics");
}

bool write_prometheus(const std::string& path) {
  const util::Status st = util::atomic_write_file(path, prometheus_text());
  if (!st.ok()) {
    util::Log(util::LogLevel::kError)
        << "obs: cannot write Prometheus exposition to '" << path
        << "': " << st.error().to_string();
    return false;
  }
  return true;
}

long peak_rss_kb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;  // kilobytes on Linux; monotone high-water mark
}

double process_wall_ms() {
  const std::int64_t epoch =
      state().epoch_ns.load(std::memory_order_relaxed);
  return static_cast<double>(clock_now_ns() - epoch) / 1e6;
}

void update_process_gauges() {
  MetricsRegistry& reg = registry();
  reg.set(reg.gauge("process.peak_rss_kb"), peak_rss_kb());
  reg.set(reg.gauge("process.wall_ms"),
          static_cast<std::int64_t>(process_wall_ms()));
}

}  // namespace tracesel::obs
