#include "util/obs.hpp"

#include <sys/resource.h>

#include <algorithm>
#include <array>
#include <bit>
#include <chrono>
#include <fstream>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "util/atomic_file.hpp"
#include "util/log.hpp"

namespace tracesel::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

using Clock = std::chrono::steady_clock;

/// Hard cap on buffered events per thread: past it spans are dropped (and
/// counted in the snapshot) instead of growing memory without bound.
constexpr std::size_t kMaxEventsPerThread = std::size_t{1} << 20;

constexpr std::uint64_t kNoMin = ~std::uint64_t{0};

std::int64_t clock_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

struct HistShard {
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> sum{0};
  std::atomic<std::uint64_t> min{kNoMin};
  std::atomic<std::uint64_t> max{0};
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
};

/// One thread's private metric block. The owner thread is the only writer
/// of the atomics (relaxed), snapshot readers merge them concurrently;
/// the event vector is guarded by its own mutex because it reallocates.
struct ThreadShard {
  std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
  std::array<HistShard, kMaxHistograms> hists{};
  std::mutex events_mu;
  std::vector<TraceEvent> events;
  std::uint64_t events_dropped = 0;  // guarded by events_mu
  std::uint32_t tid = 0;
  std::uint32_t depth = 0;  // owner thread only
};

struct HistTotals {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = kNoMin;
  std::uint64_t max = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
};

/// The backing store behind the MetricsRegistry facade. Lock order:
/// state.mu before any shard's events_mu.
struct State {
  mutable std::mutex mu;

  // Append-only name tables; ids handed out stay valid for the process
  // lifetime (reset() clears values, never names).
  std::unordered_map<std::string, std::uint32_t> counter_ids;
  std::unordered_map<std::string, std::uint32_t> gauge_ids;
  std::unordered_map<std::string, std::uint32_t> hist_ids;
  std::vector<std::string> counter_names;
  std::vector<std::string> gauge_names;
  std::vector<std::string> hist_names;

  std::array<std::atomic<std::int64_t>, kMaxGauges> gauges{};

  std::vector<ThreadShard*> shards;  // live threads
  std::uint32_t next_tid = 0;

  // Folded-in contributions of exited threads (guarded by mu).
  std::array<std::uint64_t, kMaxCounters> retired_counters{};
  std::array<HistTotals, kMaxHistograms> retired_hists{};
  std::vector<TraceEvent> retired_events;
  std::uint64_t retired_events_dropped = 0;

  /// Trace epoch as steady-clock nanoseconds, atomic so Span never takes
  /// the registry mutex on the hot path.
  std::atomic<std::int64_t> epoch_ns{clock_now_ns()};

  ThreadShard* attach() {
    auto* shard = new ThreadShard;
    std::lock_guard<std::mutex> lk(mu);
    shard->tid = next_tid++;
    shards.push_back(shard);
    return shard;
  }

  void detach(ThreadShard* shard) {
    std::lock_guard<std::mutex> lk(mu);
    for (std::size_t i = 0; i < kMaxCounters; ++i)
      retired_counters[i] += shard->counters[i].load(std::memory_order_relaxed);
    for (std::size_t h = 0; h < kMaxHistograms; ++h)
      merge_hist(retired_hists[h], shard->hists[h]);
    {
      std::lock_guard<std::mutex> elk(shard->events_mu);
      retired_events.insert(retired_events.end(), shard->events.begin(),
                            shard->events.end());
      retired_events_dropped += shard->events_dropped;
    }
    shards.erase(std::find(shards.begin(), shards.end(), shard));
    delete shard;
  }

  static void merge_hist(HistTotals& into, const HistShard& from) {
    into.count += from.count.load(std::memory_order_relaxed);
    into.sum += from.sum.load(std::memory_order_relaxed);
    into.min = std::min(into.min, from.min.load(std::memory_order_relaxed));
    into.max = std::max(into.max, from.max.load(std::memory_order_relaxed));
    for (std::size_t b = 0; b < kHistogramBuckets; ++b)
      into.buckets[b] += from.buckets[b].load(std::memory_order_relaxed);
  }
};

State& state() {
  // Leaked on purpose: worker threads may detach during static
  // destruction, after main() has returned.
  static State* s = new State;
  return *s;
}

// Construct the state (and with it the trace epoch) during static
// initialization, not at first metric use: process_wall_ms() must measure
// from process start even when the first obs call is a final
// update_process_gauges() stamping a bench result.
[[maybe_unused]] const State& g_eager_state = state();

/// RAII registration of the calling thread's shard; the destructor folds
/// the shard into the retired accumulators at thread exit.
struct ShardHandle {
  ThreadShard* shard;
  ShardHandle() : shard(state().attach()) {}
  ~ShardHandle() { state().detach(shard); }
};

ThreadShard& local_shard() {
  thread_local ShardHandle handle;
  return *handle.shard;
}

std::uint32_t register_name(std::unordered_map<std::string, std::uint32_t>& ids,
                            std::vector<std::string>& names,
                            std::size_t capacity, std::string_view name,
                            const char* kind) {
  const auto it = ids.find(std::string(name));
  if (it != ids.end()) return it->second;
  if (names.size() >= capacity)
    throw std::length_error(std::string("obs::MetricsRegistry: ") + kind +
                            " capacity exceeded registering '" +
                            std::string(name) + "'");
  const auto id = static_cast<std::uint32_t>(names.size());
  names.emplace_back(name);
  ids.emplace(names.back(), id);
  return id;
}

}  // namespace

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

std::uint32_t histogram_bucket(std::uint64_t value) {
  return value == 0 ? 0u : static_cast<std::uint32_t>(std::bit_width(value));
}

MetricsRegistry& registry() {
  static MetricsRegistry facade;
  state();  // make sure the backing store outlives any first use
  return facade;
}

CounterId MetricsRegistry::counter(std::string_view name) {
  State& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  return CounterId{register_name(s.counter_ids, s.counter_names, kMaxCounters,
                                 name, "counter")};
}

GaugeId MetricsRegistry::gauge(std::string_view name) {
  State& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  return GaugeId{
      register_name(s.gauge_ids, s.gauge_names, kMaxGauges, name, "gauge")};
}

HistogramId MetricsRegistry::histogram(std::string_view name) {
  State& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  return HistogramId{register_name(s.hist_ids, s.hist_names, kMaxHistograms,
                                   name, "histogram")};
}

void MetricsRegistry::add(CounterId id, std::uint64_t delta) {
  local_shard().counters[id.index].fetch_add(delta,
                                             std::memory_order_relaxed);
}

void MetricsRegistry::set(GaugeId id, std::int64_t value) {
  state().gauges[id.index].store(value, std::memory_order_relaxed);
}

void MetricsRegistry::set_max(GaugeId id, std::int64_t value) {
  auto& gauge = state().gauges[id.index];
  std::int64_t seen = gauge.load(std::memory_order_relaxed);
  while (value > seen &&
         !gauge.compare_exchange_weak(seen, value,
                                      std::memory_order_relaxed)) {
  }
}

void MetricsRegistry::observe(HistogramId id, std::uint64_t value) {
  HistShard& h = local_shard().hists[id.index];
  h.count.fetch_add(1, std::memory_order_relaxed);
  h.sum.fetch_add(value, std::memory_order_relaxed);
  // The owner thread is the only writer, so load-compare-store is enough.
  if (value < h.min.load(std::memory_order_relaxed))
    h.min.store(value, std::memory_order_relaxed);
  if (value > h.max.load(std::memory_order_relaxed))
    h.max.store(value, std::memory_order_relaxed);
  h.buckets[histogram_bucket(value)].fetch_add(1, std::memory_order_relaxed);
}

std::vector<std::pair<std::string, std::uint64_t>>
MetricsRegistry::thread_counter_values() const {
  State& s = state();
  ThreadShard& shard = local_shard();
  std::vector<std::pair<std::string, std::uint64_t>> values;
  std::lock_guard<std::mutex> lk(s.mu);  // the name table may grow
  for (std::size_t i = 0; i < s.counter_names.size(); ++i) {
    const std::uint64_t v = shard.counters[i].load(std::memory_order_relaxed);
    if (v != 0) values.emplace_back(s.counter_names[i], v);
  }
  return values;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  State& s = state();
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lk(s.mu);

  std::vector<std::uint64_t> counter_totals(s.counter_names.size(), 0);
  for (std::size_t i = 0; i < counter_totals.size(); ++i)
    counter_totals[i] = s.retired_counters[i];

  auto split_of = [&](std::string label,
                      const auto& value_at) {
    std::vector<std::pair<std::string, std::uint64_t>> values;
    for (std::size_t i = 0; i < s.counter_names.size(); ++i) {
      const std::uint64_t v = value_at(i);
      if (v != 0) values.emplace_back(s.counter_names[i], v);
    }
    if (!values.empty())
      snap.per_thread_counters.emplace_back(std::move(label),
                                            std::move(values));
  };

  for (const ThreadShard* shard : s.shards) {
    std::string label = "t";
    label += std::to_string(shard->tid);
    split_of(std::move(label), [&](std::size_t i) {
      return shard->counters[i].load(std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < counter_totals.size(); ++i)
      counter_totals[i] +=
          shard->counters[i].load(std::memory_order_relaxed);
  }
  split_of("retired", [&](std::size_t i) { return s.retired_counters[i]; });

  for (std::size_t i = 0; i < s.counter_names.size(); ++i)
    snap.counters.emplace_back(s.counter_names[i], counter_totals[i]);
  for (std::size_t i = 0; i < s.gauge_names.size(); ++i)
    snap.gauges.emplace_back(s.gauge_names[i],
                             s.gauges[i].load(std::memory_order_relaxed));

  for (std::size_t h = 0; h < s.hist_names.size(); ++h) {
    HistTotals totals = s.retired_hists[h];
    for (const ThreadShard* shard : s.shards)
      State::merge_hist(totals, shard->hists[h]);
    HistogramSnapshot hs;
    hs.name = s.hist_names[h];
    hs.count = totals.count;
    hs.sum = totals.sum;
    hs.min = totals.count == 0 ? 0 : totals.min;
    hs.max = totals.max;
    hs.buckets.assign(totals.buckets.begin(), totals.buckets.end());
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  const MetricsSnapshot snap = snapshot();
  for (const auto& [n, v] : snap.counters)
    if (n == name) return v;
  return 0;
}

std::int64_t MetricsRegistry::gauge_value(std::string_view name) const {
  const MetricsSnapshot snap = snapshot();
  for (const auto& [n, v] : snap.gauges)
    if (n == name) return v;
  return 0;
}

std::optional<HistogramSnapshot> MetricsRegistry::histogram_snapshot(
    std::string_view name) const {
  MetricsSnapshot snap = snapshot();
  for (auto& h : snap.histograms)
    if (h.name == name) return std::move(h);
  return std::nullopt;
}

void reset() {
  State& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  s.retired_counters.fill(0);
  s.retired_hists.fill(HistTotals{});
  s.retired_events.clear();
  s.retired_events_dropped = 0;
  for (auto& g : s.gauges) g.store(0, std::memory_order_relaxed);
  for (ThreadShard* shard : s.shards) {
    for (auto& c : shard->counters) c.store(0, std::memory_order_relaxed);
    for (auto& h : shard->hists) {
      h.count.store(0, std::memory_order_relaxed);
      h.sum.store(0, std::memory_order_relaxed);
      h.min.store(kNoMin, std::memory_order_relaxed);
      h.max.store(0, std::memory_order_relaxed);
      for (auto& b : h.buckets) b.store(0, std::memory_order_relaxed);
    }
    std::lock_guard<std::mutex> elk(shard->events_mu);
    shard->events.clear();
    shard->events_dropped = 0;
  }
  s.epoch_ns.store(clock_now_ns(), std::memory_order_relaxed);
}

// --- spans and trace export -------------------------------------------

void Span::begin(const char* name) {
  name_ = name;
  ThreadShard& shard = local_shard();
  depth_ = shard.depth++;
  const std::int64_t epoch =
      state().epoch_ns.load(std::memory_order_relaxed);
  start_ns_ = static_cast<std::uint64_t>(clock_now_ns() - epoch);
}

void Span::end() {
  ThreadShard& shard = local_shard();
  if (shard.depth > 0) --shard.depth;

  const std::int64_t epoch =
      state().epoch_ns.load(std::memory_order_relaxed);
  const auto now_ns = static_cast<std::uint64_t>(clock_now_ns() - epoch);
  // A reset() between begin and end restarts the epoch; clamp rather than
  // underflow.
  const std::uint64_t dur =
      now_ns >= start_ns_ ? now_ns - start_ns_ : 0;

  TraceEvent event;
  event.name = name_;
  event.ts_ns = now_ns - dur;
  event.dur_ns = dur;
  event.tid = shard.tid;
  event.depth = depth_;
  {
    std::lock_guard<std::mutex> lk(shard.events_mu);
    if (shard.events.size() < kMaxEventsPerThread)
      shard.events.push_back(event);
    else
      ++shard.events_dropped;
  }

  // Mirror the latency into "span.<name>" so the metrics JSON carries the
  // distribution without re-parsing the trace.
  registry().observe(
      registry().histogram(std::string("span.") + name_), dur);
}

std::vector<TraceEvent> trace_events() {
  State& s = state();
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lk(s.mu);
    events = s.retired_events;
    for (ThreadShard* shard : s.shards) {
      std::lock_guard<std::mutex> elk(shard->events_mu);
      events.insert(events.end(), shard->events.begin(),
                    shard->events.end());
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
              if (a.depth != b.depth) return a.depth < b.depth;
              return a.tid < b.tid;
            });
  return events;
}

util::Json chrome_trace_json() {
  util::Json events = util::Json::array();
  {
    // Process/thread metadata rows make the Perfetto timeline readable.
    util::Json meta = util::Json::object();
    meta.set("ph", util::Json::string("M"));
    meta.set("pid", util::Json::number(std::int64_t{1}));
    meta.set("name", util::Json::string("process_name"));
    util::Json args = util::Json::object();
    args.set("name", util::Json::string("tracesel"));
    meta.set("args", std::move(args));
    events.push_back(std::move(meta));
  }
  for (const TraceEvent& e : trace_events()) {
    util::Json je = util::Json::object();
    je.set("name", util::Json::string(e.name));
    je.set("cat", util::Json::string("tracesel"));
    je.set("ph", util::Json::string("X"));
    je.set("pid", util::Json::number(std::int64_t{1}));
    je.set("tid", util::Json::number(std::uint64_t{e.tid}));
    // Chrome trace timestamps are microseconds.
    je.set("ts", util::Json::number(static_cast<double>(e.ts_ns) / 1000.0));
    je.set("dur",
           util::Json::number(static_cast<double>(e.dur_ns) / 1000.0));
    util::Json args = util::Json::object();
    args.set("depth", util::Json::number(std::uint64_t{e.depth}));
    je.set("args", std::move(args));
    events.push_back(std::move(je));
  }
  util::Json out = util::Json::object();
  out.set("displayTimeUnit", util::Json::string("ms"));
  out.set("traceEvents", std::move(events));
  return out;
}

util::Json metrics_json() {
  update_process_gauges();
  const MetricsSnapshot snap = registry().snapshot();

  util::Json counters = util::Json::object();
  for (const auto& [name, value] : snap.counters)
    counters.set(name, util::Json::number(value));

  util::Json gauges = util::Json::object();
  for (const auto& [name, value] : snap.gauges)
    gauges.set(name, util::Json::number(value));

  util::Json hists = util::Json::object();
  for (const HistogramSnapshot& h : snap.histograms) {
    util::Json jh = util::Json::object();
    jh.set("count", util::Json::number(h.count));
    jh.set("sum", util::Json::number(h.sum));
    jh.set("min", util::Json::number(h.min));
    jh.set("max", util::Json::number(h.max));
    jh.set("mean", util::Json::number(
                       h.count == 0 ? 0.0
                                    : static_cast<double>(h.sum) /
                                          static_cast<double>(h.count)));
    util::Json buckets = util::Json::array();
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (h.buckets[b] == 0) continue;
      util::Json jb = util::Json::object();
      // Bucket b >= 1 holds values in [2^(b-1), 2^b); report the upper
      // bound, log-scale.
      jb.set("lt", util::Json::number(
                       b == 0 ? std::uint64_t{1} : std::uint64_t{1} << b));
      jb.set("count", util::Json::number(h.buckets[b]));
      buckets.push_back(std::move(jb));
    }
    jh.set("buckets", std::move(buckets));
    hists.set(h.name, std::move(jh));
  }

  util::Json per_thread = util::Json::object();
  for (const auto& [label, values] : snap.per_thread_counters) {
    util::Json jt = util::Json::object();
    for (const auto& [name, value] : values)
      jt.set(name, util::Json::number(value));
    per_thread.set(label, std::move(jt));
  }

  util::Json process = util::Json::object();
  process.set("peak_rss_kb",
              util::Json::number(static_cast<std::int64_t>(peak_rss_kb())));
  process.set("wall_ms", util::Json::number(process_wall_ms()));

  util::Json out = util::Json::object();
  out.set("process", std::move(process));
  out.set("counters", std::move(counters));
  out.set("gauges", std::move(gauges));
  out.set("histograms", std::move(hists));
  out.set("per_thread_counters", std::move(per_thread));
  return out;
}

namespace {

bool write_json(const util::Json& json, const std::string& path,
                const char* what) {
  // Temp+rename: a run killed mid-flush (SIGINT after a cancel request,
  // node preemption) must never leave a truncated half-JSON sink behind.
  const util::Status st = util::atomic_write_file(path, json.dump(2) + '\n');
  if (!st.ok()) {
    util::Log(util::LogLevel::kError)
        << "obs: cannot write " << what << " to '" << path
        << "': " << st.error().to_string();
    return false;
  }
  return true;
}

}  // namespace

bool write_chrome_trace(const std::string& path) {
  return write_json(chrome_trace_json(), path, "Chrome trace");
}

bool write_metrics(const std::string& path) {
  return write_json(metrics_json(), path, "metrics");
}

long peak_rss_kb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;  // kilobytes on Linux; monotone high-water mark
}

double process_wall_ms() {
  const std::int64_t epoch =
      state().epoch_ns.load(std::memory_order_relaxed);
  return static_cast<double>(clock_now_ns() - epoch) / 1e6;
}

void update_process_gauges() {
  MetricsRegistry& reg = registry();
  reg.set(reg.gauge("process.peak_rss_kb"), peak_rss_kb());
  reg.set(reg.gauge("process.wall_ms"),
          static_cast<std::int64_t>(process_wall_ms()));
}

}  // namespace tracesel::obs
