#pragma once
// ASCII table rendering for the bench harness. Every bench binary prints the
// same rows/columns the paper's tables report, through this formatter.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace tracesel::util {

/// Column alignment inside a rendered table.
enum class Align { kLeft, kRight };

/// A minimal monospace table: header row, body rows, per-column alignment.
/// Cells are strings; use format helpers (pct, fixed) for numbers.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends one row. Rows shorter than the header are right-padded with
  /// empty cells; longer rows are an error.
  void add_row(std::vector<std::string> cells);

  /// Overrides alignment of one column (default: left for col 0, right
  /// otherwise).
  void set_align(std::size_t col, Align align);

  /// Renders with unicode-free box drawing, suitable for terminals and logs.
  std::string to_string() const;

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return headers_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<Align> aligns_;
};

std::ostream& operator<<(std::ostream& os, const Table& table);

/// Formats a fraction in [0,1] as a percentage with two decimals ("98.96%").
std::string pct(double fraction, int decimals = 2);

/// Formats a double with fixed decimals.
std::string fixed(double value, int decimals = 2);

}  // namespace tracesel::util
