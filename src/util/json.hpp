#pragma once
// Minimal JSON writer (no parsing): enough to serialize results for CI
// pipelines and notebooks. Values are built bottom-up; rendering is
// deterministic (object keys keep insertion order).

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tracesel::util {

/// An immutable JSON value. Construct with the static factories; render
/// with dump().
class Json {
 public:
  static Json null();
  static Json boolean(bool value);
  static Json number(double value);
  static Json number(std::int64_t value);
  static Json number(std::uint64_t value);
  static Json string(std::string_view value);
  static Json array(std::vector<Json> items = {});
  static Json object(
      std::vector<std::pair<std::string, Json>> members = {});

  /// Array/object builders (no-ops with a diagnostic throw on other kinds).
  void push_back(Json item);
  void set(std::string key, Json value);

  /// Renders compact JSON; `indent` > 0 pretty-prints.
  std::string dump(int indent = 0) const;

 private:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;
  void render(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  bool integral_ = false;
  std::int64_t int_ = 0;
  std::string str_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace tracesel::util
