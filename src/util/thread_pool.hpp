#pragma once
// Fixed-size worker pool behind every parallel hot loop in the library
// (Step 1/2 combination search, Monte-Carlo debug trials, multi-scenario
// selection). Design constraints, in order:
//
//  1. Determinism. parallel_reduce combines chunk results in chunk-index
//     order on the calling thread, so a reduction over floating-point
//     values is bit-identical to the same chunking run serially,
//     regardless of worker count or scheduling.
//  2. Exception transparency. The first exception thrown by any task is
//     captured and rethrown from wait() on the calling thread; the pool
//     stays usable afterwards.
//  3. No global state. Callers own their pools; SelectorConfig::jobs
//     decides the width (0 = one worker per hardware thread).

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "util/cancel.hpp"

namespace tracesel::util {

class ThreadPool {
 public:
  /// Spawns `workers` threads; 0 means resolve_jobs(0) = one per hardware
  /// thread (at least one).
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Maps a SelectorConfig::jobs value to a worker count: 0 = one per
  /// hardware thread (minimum 1), anything else is taken literally.
  static std::size_t resolve_jobs(std::size_t jobs);

  std::size_t size() const { return workers_.size(); }

  /// Enqueues one task. Tasks may not touch the pool except via submit().
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished, then rethrows the
  /// first exception any of them raised (if any). The pool remains usable.
  void wait();

  /// Runs body(i) for every i in [begin, end), `grain` indices per task.
  /// body is shared across workers and must be safe to invoke concurrently
  /// for distinct indices. Blocks until done; rethrows the first exception.
  ///
  /// `cancel` (optional) makes the loop cooperative: once the token reports
  /// cancellation, not-yet-started chunks are skipped (each queued task
  /// re-checks the token before its first iteration), so the call returns
  /// within one chunk granule of the request. The caller must treat the
  /// iteration space as partially covered when cancel->cancelled() is true
  /// afterwards; indices that did run each ran exactly once.
  template <typename Body>
  void parallel_for(std::size_t begin, std::size_t end, Body&& body,
                    std::size_t grain = 1,
                    const CancelToken* cancel = nullptr) {
    if (end <= begin) return;
    if (grain == 0) grain = 1;
    for (std::size_t b = begin; b < end; b += grain) {
      const std::size_t e = b + grain < end ? b + grain : end;
      submit([&body, b, e, cancel] {
        if (cancel != nullptr && cancel->cancelled()) return;
        for (std::size_t i = b; i < e; ++i) body(i);
      });
    }
    wait();
  }

  /// Deterministic ordered reduction: chunk_fn(b, e) maps each chunk
  /// [b, e) to a partial value; partials are combined with
  /// combine(acc, partial) in ascending chunk order on the calling thread.
  /// For a fixed (range, grain) the result is bit-identical no matter how
  /// many workers the pool has.
  /// `cancel` (optional): chunks skipped after cancellation contribute the
  /// identity, so when cancel->cancelled() is observed afterwards the
  /// returned value is a *partial* reduction over the chunks that ran.
  template <typename T, typename ChunkFn, typename CombineFn>
  T parallel_reduce(std::size_t begin, std::size_t end, std::size_t grain,
                    T identity, ChunkFn&& chunk_fn, CombineFn&& combine,
                    const CancelToken* cancel = nullptr) {
    if (end <= begin) return identity;
    if (grain == 0) grain = 1;
    const std::size_t chunks = (end - begin + grain - 1) / grain;
    std::vector<T> partial(chunks, identity);
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t b = begin + c * grain;
      const std::size_t e = b + grain < end ? b + grain : end;
      submit([&chunk_fn, &partial, b, e, c, cancel] {
        if (cancel != nullptr && cancel->cancelled()) return;
        partial[c] = chunk_fn(b, e);
      });
    }
    wait();
    T acc = std::move(identity);
    for (std::size_t c = 0; c < chunks; ++c)
      acc = combine(std::move(acc), std::move(partial[c]));
    return acc;
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_idle_;
  std::size_t active_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

}  // namespace tracesel::util
