#pragma once
// Minimal leveled logger. The simulator and debug engine log message-level
// events at kDebug; benches run at kWarn so tables stay clean.

#include <iostream>
#include <sstream>
#include <string>

namespace tracesel::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-global log threshold; messages below it are discarded.
LogLevel log_threshold();
void set_log_threshold(LogLevel level);

/// CLI flag spelling of a level ("debug", "info", "warn", "error").
const char* log_level_name(LogLevel level);

/// Process-global context tag inserted between the stamp and the text of
/// every log line (empty = none). A distributed worker sets this to the
/// work-unit id it is serving, so interleaved multi-process logs stay
/// attributable.
void set_log_context(std::string context);

namespace detail {
void emit(LogLevel level, const std::string& text);
}

/// Stream-style one-shot logger: Log(LogLevel::kInfo) << "x=" << x;
/// The line is emitted (with a level prefix) when the temporary dies.
class Log {
 public:
  explicit Log(LogLevel level) : level_(level) {}
  Log(const Log&) = delete;
  Log& operator=(const Log&) = delete;
  ~Log() {
    if (level_ >= log_threshold()) detail::emit(level_, buffer_.str());
  }

  template <typename T>
  Log& operator<<(const T& value) {
    if (level_ >= log_threshold()) buffer_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream buffer_;
};

}  // namespace tracesel::util
