#pragma once
// The one framing codec every tracesel byte stream speaks (DESIGN.md §12,
// §13). Two layers, independently usable:
//
// Binary frames — pipes and sockets are byte streams, so messages are
// delimited by a fixed 20-byte header: 8-byte magic "TSELFRM1",
// little-endian u32 payload length, little-endian u64 FNV-1a checksum of
// the payload. The checksum catches payload corruption inside an intact
// frame; a bad magic or an over-cap length means stream
// desynchronization, which FrameReader reports as kCorrupt —
// unrecoverable for that stream (peers respond by dropping the
// connection or killing the worker). Used by the distributed
// coordinator/worker pipes (util/subprocess.hpp) and the traceseld
// Unix-socket protocol (service/protocol.hpp).
//
// Text envelopes — durable artifacts (search checkpoints, work units, job
// requests) are text files prefixed by one header line
//
//     <tag> <version> <fnv1a64-of-payload-in-hex>\n<payload>
//
// so version skew and payload corruption surface as typed parse errors
// before any field is interpreted. Hoisted here from the checkpoint
// serializer so every envelope user (checkpoints, the daemon's job
// codec) validates identically.

#include <cstdint>
#include <string>
#include <string_view>

#include "util/result.hpp"

namespace tracesel::util {

// --- binary length-prefixed frames -------------------------------------

inline constexpr char kFrameMagic[8] = {'T', 'S', 'E', 'L',
                                        'F', 'R', 'M', '1'};
inline constexpr std::size_t kFrameHeaderBytes = 8 + 4 + 8;
/// Frames carry checkpoint-sized payloads; anything larger is a corrupted
/// length field, not a legitimate message.
inline constexpr std::size_t kMaxFrameBytes = 64u << 20;

/// Header + payload as one contiguous buffer.
std::string encode_frame(std::string_view payload);

/// encode_frame + a full blocking write on a raw fd (EINTR retried; EPIPE
/// reported as a typed error, never a signal — see util::ignore_sigpipe).
Status write_frame(int fd, std::string_view payload);

/// Incremental decoder: feed() raw bytes as they arrive, then drain
/// complete frames with next(). Once a frame fails validation the stream
/// is poisoned (kCorrupt forever) — framing cannot resynchronize.
class FrameReader {
 public:
  enum class State { kFrame, kNeedMore, kCorrupt };

  explicit FrameReader(std::size_t max_frame_bytes = kMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void feed(const char* data, std::size_t n) { buffer_.append(data, n); }
  void feed(std::string_view bytes) { buffer_.append(bytes); }

  /// Extracts the next complete frame's payload into `payload`.
  State next(std::string& payload);

  /// Human-readable reason after kCorrupt.
  const std::string& corrupt_reason() const { return corrupt_reason_; }

  /// Bytes buffered but not yet consumed (diagnostics).
  std::size_t buffered() const { return buffer_.size(); }

 private:
  std::size_t max_frame_bytes_ = kMaxFrameBytes;
  std::string buffer_;
  bool corrupt_ = false;
  std::string corrupt_reason_;
};

// --- versioned, checksummed text envelopes -----------------------------

/// "<tag> <version> <checksum-hex>\n" + payload.
std::string encode_envelope(std::string_view tag, std::uint32_t version,
                            std::string_view payload);

/// Validates the header line and checksum and returns a view of the
/// payload (into `text`). `subject` names the artifact in diagnostics
/// ("checkpoint", "job request", ...). Errors: kParse for a malformed
/// header or an unsupported version, kCorruptCapture for a checksum
/// mismatch — the same taxonomy the checkpoint loader has always used.
Result<std::string_view> decode_envelope(std::string_view text,
                                         std::string_view tag,
                                         std::uint32_t version,
                                         std::string_view subject);

}  // namespace tracesel::util
