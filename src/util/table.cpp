#include "util/table.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace tracesel::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: no headers");
  aligns_.assign(headers_.size(), Align::kRight);
  aligns_[0] = Align::kLeft;
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() > headers_.size())
    throw std::invalid_argument("Table: row wider than header");
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::set_align(std::size_t col, Align align) {
  if (col >= aligns_.size()) throw std::out_of_range("Table: bad column");
  aligns_[col] = align;
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto rule = [&] {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto emit = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      const std::size_t pad = widths[c] - row[c].size();
      os << ' ';
      if (aligns_[c] == Align::kRight) os << std::string(pad, ' ');
      os << row[c];
      if (aligns_[c] == Align::kLeft) os << std::string(pad, ' ');
      os << " |";
    }
    os << '\n';
  };

  rule();
  emit(headers_);
  rule();
  for (const auto& row : rows_) emit(row);
  rule();
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Table& table) {
  return os << table.to_string();
}

std::string pct(double fraction, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << fraction * 100.0 << '%';
  return os.str();
}

std::string fixed(double value, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << value;
  return os.str();
}

}  // namespace tracesel::util
