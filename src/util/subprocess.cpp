#include "util/subprocess.hpp"

#include <errno.h>
#include <fcntl.h>
#include <signal.h>
#include <string.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#include <utility>

namespace tracesel::util {

void ignore_sigpipe() {
  static const bool installed = [] {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = SIG_IGN;
    ::sigaction(SIGPIPE, &sa, nullptr);
    return true;
  }();
  (void)installed;
}

Subprocess& Subprocess::operator=(Subprocess&& other) noexcept {
  if (this != &other) {
    if (valid() && !reaped_) {
      kill_hard();
      wait();
    }
    close_fds();
    pid_ = std::exchange(other.pid_, -1);
    stdin_fd_ = std::exchange(other.stdin_fd_, -1);
    stdout_fd_ = std::exchange(other.stdout_fd_, -1);
    reaped_ = std::exchange(other.reaped_, false);
    exit_code_ = std::exchange(other.exit_code_, -1);
  }
  return *this;
}

Subprocess::~Subprocess() {
  if (valid() && !reaped_) {
    kill_hard();
    wait();
  }
  close_fds();
}

void Subprocess::close_fds() {
  if (stdin_fd_ >= 0) {
    ::close(stdin_fd_);
    stdin_fd_ = -1;
  }
  if (stdout_fd_ >= 0) {
    ::close(stdout_fd_);
    stdout_fd_ = -1;
  }
}

Result<Subprocess> Subprocess::spawn(const std::vector<std::string>& argv) {
  if (argv.empty()) {
    return Error{ErrorCode::kInternal, "spawn: empty argv"};
  }
  ignore_sigpipe();

  int to_child[2] = {-1, -1};    // parent writes [1] -> child stdin [0]
  int from_child[2] = {-1, -1};  // child stdout [1] -> parent reads [0]
  if (::pipe2(to_child, O_CLOEXEC) != 0) {
    return Error{ErrorCode::kInternal,
                 std::string("spawn: pipe2 failed: ") + std::strerror(errno)};
  }
  if (::pipe2(from_child, O_CLOEXEC) != 0) {
    const int err = errno;
    ::close(to_child[0]);
    ::close(to_child[1]);
    return Error{ErrorCode::kInternal,
                 std::string("spawn: pipe2 failed: ") + std::strerror(err)};
  }

  const pid_t pid = ::fork();
  if (pid < 0) {
    const int err = errno;
    ::close(to_child[0]);
    ::close(to_child[1]);
    ::close(from_child[0]);
    ::close(from_child[1]);
    return Error{ErrorCode::kInternal,
                 std::string("spawn: fork failed: ") + std::strerror(err)};
  }

  if (pid == 0) {
    // Child: wire the pipe ends onto stdin/stdout (dup2 clears O_CLOEXEC on
    // the duplicates; the originals close on exec), restore default SIGPIPE
    // so the worker dies cleanly if the coordinator vanishes mid-write.
    if (::dup2(to_child[0], STDIN_FILENO) < 0 ||
        ::dup2(from_child[1], STDOUT_FILENO) < 0) {
      ::_exit(127);
    }
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = SIG_DFL;
    ::sigaction(SIGPIPE, &sa, nullptr);

    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string& a : argv) {
      cargv.push_back(const_cast<char*>(a.c_str()));
    }
    cargv.push_back(nullptr);
    ::execvp(cargv[0], cargv.data());
    ::_exit(127);
  }

  // Parent.
  ::close(to_child[0]);
  ::close(from_child[1]);

  const int flags = ::fcntl(from_child[0], F_GETFL, 0);
  if (flags >= 0) {
    ::fcntl(from_child[0], F_SETFL, flags | O_NONBLOCK);
  }

  Subprocess child;
  child.pid_ = pid;
  child.stdin_fd_ = to_child[1];
  child.stdout_fd_ = from_child[0];
  return child;
}

Status Subprocess::write_all(std::string_view bytes) const {
  if (stdin_fd_ < 0) {
    return Error{ErrorCode::kInternal, "write_all: stdin already closed"};
  }
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::write(stdin_fd_, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      const char* what = errno == EPIPE ? "write_all: peer closed (EPIPE)"
                                        : "write_all: write failed";
      return Error{ErrorCode::kInternal,
                   std::string(what) + ": " + std::strerror(errno)};
    }
    off += static_cast<std::size_t>(n);
  }
  return Status::success();
}

void Subprocess::close_stdin() {
  if (stdin_fd_ >= 0) {
    ::close(stdin_fd_);
    stdin_fd_ = -1;
  }
}

void Subprocess::kill_hard() const {
  if (pid_ > 0 && !reaped_) {
    ::kill(pid_, SIGKILL);
  }
}

bool Subprocess::try_wait(int* code) {
  if (reaped_) {
    if (code != nullptr) {
      *code = exit_code_;
    }
    return true;
  }
  if (pid_ <= 0) {
    return false;
  }
  int status = 0;
  const pid_t r = ::waitpid(pid_, &status, WNOHANG);
  if (r == 0) {
    return false;
  }
  reaped_ = true;
  if (r < 0) {
    exit_code_ = -1;  // already reaped elsewhere; nothing better to report
  } else if (WIFEXITED(status)) {
    exit_code_ = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    exit_code_ = 128 + WTERMSIG(status);
  } else {
    exit_code_ = -1;
  }
  if (code != nullptr) {
    *code = exit_code_;
  }
  return true;
}

int Subprocess::wait() {
  if (reaped_) {
    return exit_code_;
  }
  if (pid_ <= 0) {
    return -1;
  }
  int status = 0;
  pid_t r;
  do {
    r = ::waitpid(pid_, &status, 0);
  } while (r < 0 && errno == EINTR);
  reaped_ = true;
  if (r < 0) {
    exit_code_ = -1;
  } else if (WIFEXITED(status)) {
    exit_code_ = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    exit_code_ = 128 + WTERMSIG(status);
  } else {
    exit_code_ = -1;
  }
  return exit_code_;
}

}  // namespace tracesel::util
