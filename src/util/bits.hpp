#pragma once
// Bit-width helpers shared by the flow model and the trace buffer.

#include <cstdint>

namespace tracesel::util {

/// Number of bits needed to represent `values` distinct values
/// (ceil(log2(values)), minimum 1). A message content space of N values
/// needs this many trace-buffer bits.
constexpr std::uint32_t bits_for_values(std::uint64_t values) {
  if (values <= 2) return 1;
  std::uint32_t bits = 0;
  std::uint64_t capacity = 1;
  while (capacity < values) {
    capacity <<= 1;
    ++bits;
  }
  return bits;
}

/// Largest value representable in `width` bits.
constexpr std::uint64_t max_value_for_width(std::uint32_t width) {
  return width >= 64 ? ~0ull : ((1ull << width) - 1);
}

}  // namespace tracesel::util
