#pragma once
// Structured error handling for the degradation-tolerant pipeline.
//
// Post-silicon captures are lossy by construction (a 32-bit buffer, noisy
// sideband signals, dropped beats), so "this trace is damaged" is an
// expected outcome, not a programming error. The hot paths that decode and
// interpret captures (observation diffing, path localization) return
// Result<T> instead of throwing: callers decide whether to retry with a
// fresh capture, degrade to lower-confidence answers, or surface the error.
// Exceptions remain reserved for contract violations (bad configuration,
// impossible states).

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace tracesel::util {

/// The error taxonomy of the capture-processing pipeline.
enum class ErrorCode {
  kInvalidArgument,   ///< caller broke a precondition we can report softly
  kParse,             ///< malformed collateral (flow spec, profile string)
  kCorruptCapture,    ///< trace decoded, but evidence is self-contradictory
  kUnusableCapture,   ///< too little valid data to support any conclusion
  kExhaustedRetries,  ///< every recapture attempt stayed unusable
  kCancelled,         ///< cooperative cancel/deadline stopped the stage
  kResourceExhausted, ///< a memory/node budget refused the request
  kInternal,          ///< invariant violation inside the library
};

inline const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kInvalidArgument: return "invalid-argument";
    case ErrorCode::kParse: return "parse";
    case ErrorCode::kCorruptCapture: return "corrupt-capture";
    case ErrorCode::kUnusableCapture: return "unusable-capture";
    case ErrorCode::kExhaustedRetries: return "exhausted-retries";
    case ErrorCode::kCancelled: return "cancelled";
    case ErrorCode::kResourceExhausted: return "resource-exhausted";
    case ErrorCode::kInternal: return "internal";
  }
  return "?";
}

/// One structured error: a taxonomy code plus a human-readable message.
struct Error {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;

  std::string to_string() const {
    return std::string(util::to_string(code)) + ": " + message;
  }

  friend bool operator==(const Error& a, const Error& b) {
    return a.code == b.code && a.message == b.message;
  }
};

/// Expected<T>-style sum type: either a value or an Error. value() on an
/// error (or error() on a value) throws std::logic_error — that is a caller
/// bug, not a data condition, so it stays an exception.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : state_(std::move(value)) {}            // NOLINT implicit
  Result(Error error) : state_(std::move(error)) {}        // NOLINT implicit
  Result(ErrorCode code, std::string message)
      : state_(Error{code, std::move(message)}) {}

  static Result ok(T value) { return Result(std::move(value)); }
  static Result err(ErrorCode code, std::string message) {
    return Result(Error{code, std::move(message)});
  }

  bool ok() const { return std::holds_alternative<T>(state_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    require(ok(), "Result::value() called on an error");
    return std::get<T>(state_);
  }
  T& value() & {
    require(ok(), "Result::value() called on an error");
    return std::get<T>(state_);
  }
  T&& value() && {
    require(ok(), "Result::value() called on an error");
    return std::get<T>(std::move(state_));
  }

  const Error& error() const {
    require(!ok(), "Result::error() called on a value");
    return std::get<Error>(state_);
  }

  T value_or(T fallback) const& {
    return ok() ? std::get<T>(state_) : std::move(fallback);
  }

  /// Applies `fn` to the value, forwarding errors unchanged.
  template <typename Fn>
  auto map(Fn&& fn) const -> Result<decltype(fn(std::declval<const T&>()))> {
    using U = decltype(fn(std::declval<const T&>()));
    if (!ok()) return Result<U>(error());
    return Result<U>(fn(std::get<T>(state_)));
  }

  /// Chains a fallible continuation (fn returns Result<U>).
  template <typename Fn>
  auto and_then(Fn&& fn) const -> decltype(fn(std::declval<const T&>())) {
    if (!ok()) return decltype(fn(std::declval<const T&>()))(error());
    return fn(std::get<T>(state_));
  }

 private:
  static void require(bool cond, const char* what) {
    if (!cond) throw std::logic_error(what);
  }

  std::variant<T, Error> state_;
};

/// Result with no payload: success or a structured error.
class [[nodiscard]] Status {
 public:
  Status() = default;  ///< success
  Status(Error error) : error_(std::move(error)), failed_(true) {}  // NOLINT
  Status(ErrorCode code, std::string message)
      : error_(Error{code, std::move(message)}), failed_(true) {}

  static Status success() { return Status(); }
  static Status err(ErrorCode code, std::string message) {
    return Status(Error{code, std::move(message)});
  }

  bool ok() const { return !failed_; }
  explicit operator bool() const { return ok(); }

  const Error& error() const {
    if (!failed_) throw std::logic_error("Status::error() called on ok");
    return error_;
  }

 private:
  Error error_;
  bool failed_ = false;
};

}  // namespace tracesel::util
