#pragma once
// Exponential backoff with seeded jitter (DESIGN.md §12).
//
// Every retry loop in the pipeline — recapturing an unusable trace,
// redispatching a lost distributed work unit, respawning a crashed worker
// process — needs spacing between attempts that (a) grows exponentially so
// a persistent failure backs off instead of busy-spinning, (b) is jittered
// so a fleet of retriers does not stampede in lockstep, and (c) is
// *deterministic given a seed*, because the whole repository's testing
// story is bit-reproducibility: a seeded fault schedule must produce the
// same delays on every run.
//
// A Backoff is a small value type: next() returns the delay to wait before
// the upcoming attempt (attempt 0 -> initial_ms scaled by jitter, then
// doubling — or whatever `multiplier` says — up to cap_ms). Jitter draws
// from a private Rng stream seeded with (policy.seed, stream), so two
// retriers with different stream ids (e.g. work-unit ids) decorrelate while
// staying reproducible.

#include <chrono>
#include <cstdint>

#include "util/rng.hpp"

namespace tracesel::util {

/// The shape of a retry schedule. Defaults suit in-process retries; the
/// distributed coordinator overrides them per deployment.
struct BackoffPolicy {
  std::uint32_t initial_ms = 10;  ///< base delay before the first retry
  double multiplier = 2.0;        ///< growth factor per attempt
  std::uint32_t cap_ms = 2000;    ///< ceiling for the (pre-jitter) delay
  /// Fraction of the base delay randomized: the returned delay is uniform
  /// in [base*(1-jitter), base*(1+jitter)], clamped to cap_ms. 0 disables.
  double jitter = 0.25;
  std::uint64_t seed = 1;  ///< jitter stream seed (deterministic schedules)
};

class Backoff {
 public:
  /// `stream` decorrelates independent retriers sharing one policy (the
  /// distributed coordinator passes the work-unit id).
  explicit Backoff(BackoffPolicy policy = {}, std::uint64_t stream = 0)
      : policy_(policy), stream_(stream), rng_(mix(policy.seed, stream)) {}

  /// Delay before the next attempt; advances the schedule.
  std::chrono::milliseconds next();

  /// Restarts the schedule (attempt counter and jitter stream).
  void reset() {
    attempt_ = 0;
    rng_ = Rng(mix(policy_.seed, stream_));
  }

  /// Attempts scheduled so far (== next() calls since construction/reset).
  std::uint32_t attempts() const { return attempt_; }

  const BackoffPolicy& policy() const { return policy_; }

 private:
  static std::uint64_t mix(std::uint64_t seed, std::uint64_t stream) {
    // splitmix-style avalanche so (seed, stream) and (seed, stream+1)
    // produce unrelated Rng states.
    std::uint64_t z = seed + 0x9E3779B97F4A7C15ull * (stream + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  BackoffPolicy policy_;
  std::uint64_t stream_ = 0;
  Rng rng_;
  std::uint32_t attempt_ = 0;
};

}  // namespace tracesel::util
