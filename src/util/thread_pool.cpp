#include "util/thread_pool.hpp"

#include <chrono>
#include <stdexcept>

#include "util/obs.hpp"

namespace tracesel::util {

std::size_t ThreadPool::resolve_jobs(std::size_t jobs) {
  if (jobs != 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(std::size_t workers) {
  const std::size_t n = resolve_jobs(workers);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stop_)
      throw std::runtime_error("ThreadPool::submit: pool is shut down");
    queue_.push_back(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::worker_loop() {
  using Clock = std::chrono::steady_clock;
  for (;;) {
    // Per-iteration observability (checked fresh each lap so a pool created
    // before obs::set_enabled still reports): worker task tallies land in
    // per-thread counter shards, giving the shard-balance split for free.
    const bool observed = obs::enabled();
    std::function<void()> task;
    Clock::time_point t0;
    if (observed) t0 = Clock::now();
    {
      std::unique_lock<std::mutex> lk(mu_);
      task_ready_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    Clock::time_point t1;
    if (observed) {
      t1 = Clock::now();
      OBS_COUNT("pool.tasks", 1);
      OBS_HIST("pool.idle_ns", std::chrono::duration_cast<
                                   std::chrono::nanoseconds>(t1 - t0)
                                   .count());
    }
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lk(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    if (observed) {
      OBS_HIST("pool.task_ns", std::chrono::duration_cast<
                                   std::chrono::nanoseconds>(Clock::now() - t1)
                                   .count());
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) all_idle_.notify_all();
    }
  }
}

void ThreadPool::wait() {
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lk(mu_);
    all_idle_.wait(lk, [this] { return queue_.empty() && active_ == 0; });
    error = std::exchange(first_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace tracesel::util
