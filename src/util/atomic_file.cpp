#include "util/atomic_file.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace tracesel::util {

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

Status atomic_write_file(const std::string& path, std::string_view contents) {
  if (path.empty())
    return Status::err(ErrorCode::kInvalidArgument,
                       "atomic_write_file: empty path");
  // A sibling temp keeps the rename on one filesystem (atomicity) and makes
  // leftovers from a killed process easy to spot and reap.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out)
      return Status::err(ErrorCode::kInvalidArgument,
                         "cannot open '" + tmp + "' for writing");
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return Status::err(ErrorCode::kInternal,
                         "short write to '" + tmp + "'");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::err(ErrorCode::kInternal,
                       "cannot rename '" + tmp + "' over '" + path + "'");
  }
  return Status::success();
}

Result<std::string> read_file_capped(const std::string& path,
                                     std::size_t max_bytes) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in)
    return Result<std::string>::err(ErrorCode::kInvalidArgument,
                                    "cannot open '" + path + "'");
  const auto size = in.tellg();
  if (size < 0)
    return Result<std::string>::err(ErrorCode::kInternal,
                                    "cannot stat '" + path + "'");
  if (static_cast<std::uint64_t>(size) > max_bytes)
    return Result<std::string>::err(
        ErrorCode::kParse, "'" + path + "' exceeds the " +
                               std::to_string(max_bytes) + "-byte cap");
  in.seekg(0);
  std::string text(static_cast<std::size_t>(size), '\0');
  in.read(text.data(), size);
  if (!in && size != 0)
    return Result<std::string>::err(ErrorCode::kInternal,
                                    "short read from '" + path + "'");
  return text;
}

}  // namespace tracesel::util
