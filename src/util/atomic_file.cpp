#include "util/atomic_file.hpp"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace tracesel::util {

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

namespace {

// The directory that would hold `path` ("." for a bare filename).
std::string parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

Status atomic_write_file(const std::string& path, std::string_view contents) {
  if (path.empty())
    return Status::err(ErrorCode::kInvalidArgument,
                       "atomic_write_file: empty path");
  // A sibling temp keeps the rename on one filesystem (atomicity) and makes
  // leftovers from a killed process easy to spot and reap.
  const std::string tmp = path + ".tmp";
  int fd;
  do {
    fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0)
    return Status::err(ErrorCode::kInvalidArgument,
                       "cannot open '" + tmp + "' for writing: " +
                           std::strerror(errno));
  std::size_t off = 0;
  while (off < contents.size()) {
    const ssize_t n =
        ::write(fd, contents.data() + off, contents.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      std::remove(tmp.c_str());
      return Status::err(ErrorCode::kInternal,
                         "short write to '" + tmp + "': " +
                             std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
  // fsync before the rename: the rename must never become visible while the
  // new bytes are still only in the page cache, or a power loss could leave
  // `path` pointing at a hole.
  if (::fsync(fd) != 0) {
    ::close(fd);
    std::remove(tmp.c_str());
    return Status::err(ErrorCode::kInternal,
                       "fsync of '" + tmp + "' failed: " +
                           std::strerror(errno));
  }
  ::close(fd);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::err(ErrorCode::kInternal,
                       "cannot rename '" + tmp + "' over '" + path + "'");
  }
  // fsync the parent directory so the rename itself (the directory entry)
  // is durable. Best-effort: some filesystems refuse O_RDONLY on dirs, and
  // the data above is already safe.
  const std::string dir = parent_dir(path);
  int dfd;
  do {
    dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  } while (dfd < 0 && errno == EINTR);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return Status::success();
}

Result<std::string> read_file_capped(const std::string& path,
                                     std::size_t max_bytes) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in)
    return Result<std::string>::err(ErrorCode::kInvalidArgument,
                                    "cannot open '" + path + "'");
  const auto size = in.tellg();
  if (size < 0)
    return Result<std::string>::err(ErrorCode::kInternal,
                                    "cannot stat '" + path + "'");
  if (static_cast<std::uint64_t>(size) > max_bytes)
    return Result<std::string>::err(
        ErrorCode::kParse, "'" + path + "' exceeds the " +
                               std::to_string(max_bytes) + "-byte cap");
  in.seekg(0);
  std::string text(static_cast<std::size_t>(size), '\0');
  in.read(text.data(), size);
  if (!in && size != 0)
    return Result<std::string>::err(ErrorCode::kInternal,
                                    "short read from '" + path + "'");
  return text;
}

}  // namespace tracesel::util
