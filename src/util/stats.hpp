#pragma once
// Small statistics helpers used by the evaluation harness (correlation for
// Fig. 5, averages for the headline numbers, etc.).

#include <cstddef>
#include <span>
#include <vector>

namespace tracesel::util {

/// Arithmetic mean; 0 for an empty range.
double mean(std::span<const double> xs);

/// Sample standard deviation (n-1 denominator); 0 for ranges shorter than 2.
double stddev(std::span<const double> xs);

/// Pearson product-moment correlation of two equal-length ranges.
/// Returns 0 when either range has zero variance or fewer than 2 points.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Spearman rank correlation (Pearson on fractional ranks, with ties
/// averaged). Used to check the "coverage increases monotonically with
/// information gain" claim of Sec. 5.3 without assuming linearity.
double spearman(std::span<const double> xs, std::span<const double> ys);

/// Fraction of adjacent pairs (after sorting by x) for which y does not
/// decrease — a direct monotonicity score in [0,1].
double monotone_fraction(std::span<const double> xs,
                         std::span<const double> ys);

/// Fractional ranks of a sample (average ranks for ties), 1-based.
std::vector<double> ranks(std::span<const double> xs);

}  // namespace tracesel::util
