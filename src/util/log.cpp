#include "util/log.hpp"

#include <atomic>

namespace tracesel::util {

namespace {
std::atomic<LogLevel> g_threshold{LogLevel::kWarn};

const char* prefix(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "[debug] ";
    case LogLevel::kInfo: return "[info ] ";
    case LogLevel::kWarn: return "[warn ] ";
    case LogLevel::kError: return "[error] ";
  }
  return "[?    ] ";
}
}  // namespace

LogLevel log_threshold() { return g_threshold.load(std::memory_order_relaxed); }

void set_log_threshold(LogLevel level) {
  g_threshold.store(level, std::memory_order_relaxed);
}

namespace detail {
void emit(LogLevel level, const std::string& text) {
  std::clog << prefix(level) << text << '\n';
}
}  // namespace detail

}  // namespace tracesel::util
