#include "util/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace tracesel::util {

namespace {
std::atomic<LogLevel> g_threshold{LogLevel::kWarn};

const char* prefix(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "[debug] ";
    case LogLevel::kInfo: return "[info ] ";
    case LogLevel::kWarn: return "[warn ] ";
    case LogLevel::kError: return "[error] ";
  }
  return "[?    ] ";
}

/// Seconds since the first log line, so concurrent runs are comparable
/// without wall-clock parsing.
double elapsed_s() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return std::chrono::duration<double>(Clock::now() - epoch).count();
}

/// Dense per-thread id, assigned on first log from a thread.
std::uint32_t thread_id() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}
// One mutex guards both the emit stream and the context string.
std::mutex g_emit_mu;
std::string g_context;  // guarded by g_emit_mu

}  // namespace

LogLevel log_threshold() { return g_threshold.load(std::memory_order_relaxed); }

void set_log_threshold(LogLevel level) {
  g_threshold.store(level, std::memory_order_relaxed);
}

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "warn";
}

void set_log_context(std::string context) {
  std::lock_guard<std::mutex> lk(g_emit_mu);
  g_context = std::move(context);
}

namespace detail {
void emit(LogLevel level, const std::string& text) {
  // Lines from parallel workers must never interleave mid-line: format the
  // whole record first, then write it under one mutex.
  char stamp[48];
  std::snprintf(stamp, sizeof stamp, "%10.6f t%02u ", elapsed_s(),
                thread_id());
  std::lock_guard<std::mutex> lk(g_emit_mu);
  std::clog << prefix(level) << stamp;
  if (!g_context.empty()) std::clog << '[' << g_context << "] ";
  std::clog << text << '\n';
}
}  // namespace detail

}  // namespace tracesel::util
