#include "baseline/sigset.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace tracesel::baseline {

std::vector<std::vector<bool>> golden_flop_trace(
    const netlist::Netlist& netlist, std::size_t cycles, std::uint64_t seed) {
  netlist::Simulator sim(netlist);
  util::Rng rng(seed);
  std::vector<std::vector<bool>> trace;
  trace.reserve(cycles);
  std::vector<bool> inputs(netlist.inputs().size());
  for (std::size_t c = 0; c < cycles; ++c) {
    for (std::size_t i = 0; i < inputs.size(); ++i)
      inputs[i] = rng.chance(0.5);
    trace.push_back(sim.step(inputs));
  }
  return trace;
}

SigSeTResult select_sigset(const netlist::Netlist& netlist,
                           const SigSeTOptions& options) {
  const auto trace =
      golden_flop_trace(netlist, options.sim_cycles, options.seed);
  const netlist::RestorationEngine engine(netlist);
  const auto& flops = netlist.flops();

  SigSeTResult result;
  double current_known = 0.0;  // traced + restored of current selection

  while (result.selected.size() < options.budget_bits &&
         result.selected.size() < flops.size()) {
    netlist::NetId best = netlist::kInvalidNet;
    double best_known = current_known;
    double best_srr = 0.0;
    for (netlist::NetId f : flops) {
      if (std::find(result.selected.begin(), result.selected.end(), f) !=
          result.selected.end())
        continue;
      std::vector<netlist::NetId> trial = result.selected;
      trial.push_back(f);
      const auto r = engine.restore(trial, trace);
      const double known = static_cast<double>(r.traced_flop_cycles +
                                               r.restored_flop_cycles);
      if (best == netlist::kInvalidNet || known > best_known) {
        best = f;
        best_known = known;
        best_srr = r.srr();
      }
    }
    if (best == netlist::kInvalidNet) break;
    result.selected.push_back(best);
    current_known = best_known;
    result.srr = best_srr;
  }
  return result;
}

}  // namespace tracesel::baseline
