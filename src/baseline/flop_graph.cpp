#include "baseline/flop_graph.hpp"

#include <algorithm>
#include <queue>

namespace tracesel::baseline {

std::vector<std::vector<std::size_t>> flop_dependency_graph(
    const netlist::Netlist& nl) {
  using netlist::GateType;
  using netlist::NetId;

  const auto& flops = nl.flops();
  std::vector<std::size_t> flop_index(nl.num_nets(), ~std::size_t{0});
  for (std::size_t i = 0; i < flops.size(); ++i) flop_index[flops[i]] = i;

  std::vector<std::vector<std::size_t>> adjacency(flops.size());

  // For each flop v: walk the combinational cone of its D input backwards;
  // every flop found is a predecessor u with edge u -> v.
  for (std::size_t v = 0; v < flops.size(); ++v) {
    const NetId d = nl.gate(flops[v]).fanin[0];
    std::vector<bool> seen(nl.num_nets(), false);
    std::queue<NetId> work;
    work.push(d);
    seen[d] = true;
    while (!work.empty()) {
      const NetId n = work.front();
      work.pop();
      const auto& g = nl.gate(n);
      if (g.type == GateType::kFlop) {
        adjacency[flop_index[n]].push_back(v);
        continue;  // stop at sequential boundary
      }
      for (NetId f : g.fanin) {
        if (!seen[f]) {
          seen[f] = true;
          work.push(f);
        }
      }
    }
  }
  for (auto& list : adjacency) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  return adjacency;
}

}  // namespace tracesel::baseline
