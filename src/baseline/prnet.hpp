#pragma once
// PRNet-style PageRank trace signal selection (re-implementation of the
// approach of Ma et al. [7] for the Sec. 5.4 comparison): rank flip-flops
// by PageRank over the flop dependency graph (structurally central state
// elements score high) and trace the top-ranked ones.

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace tracesel::baseline {

struct PrNetOptions {
  std::size_t budget_bits = 32;
  double damping = 0.85;
  int iterations = 100;
};

struct PrNetResult {
  std::vector<netlist::NetId> selected;  ///< flop nets, by descending rank
  std::vector<double> ranks;             ///< rank per flop index
};

PrNetResult select_prnet(const netlist::Netlist& netlist,
                         const PrNetOptions& options = {});

/// Plain PageRank with uniform teleport over a directed adjacency list;
/// exposed for unit tests. Dangling nodes distribute uniformly.
std::vector<double> pagerank(
    const std::vector<std::vector<std::size_t>>& adjacency, double damping,
    int iterations);

}  // namespace tracesel::baseline
