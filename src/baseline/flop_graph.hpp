#pragma once
// Flop-level dependency graph: edge u -> v iff flop u's output reaches
// flop v's D input through combinational logic. Both baselines analyze
// this graph (PRNet directly, SigSeT through restorability over it).

#include <vector>

#include "netlist/netlist.hpp"

namespace tracesel::baseline {

/// adjacency[i] lists the *flop indices* (positions in netlist.flops())
/// whose D cones read flop i. Primary inputs are not represented.
std::vector<std::vector<std::size_t>> flop_dependency_graph(
    const netlist::Netlist& netlist);

}  // namespace tracesel::baseline
