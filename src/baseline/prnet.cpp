#include "baseline/prnet.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "baseline/flop_graph.hpp"

namespace tracesel::baseline {

std::vector<double> pagerank(
    const std::vector<std::vector<std::size_t>>& adjacency, double damping,
    int iterations) {
  const std::size_t n = adjacency.size();
  if (n == 0) return {};
  if (damping < 0.0 || damping >= 1.0)
    throw std::invalid_argument("pagerank: damping must be in [0,1)");

  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);
  for (int it = 0; it < iterations; ++it) {
    double dangling = 0.0;
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t u = 0; u < n; ++u) {
      if (adjacency[u].empty()) {
        dangling += rank[u];
        continue;
      }
      const double share = rank[u] / static_cast<double>(adjacency[u].size());
      for (std::size_t v : adjacency[u]) next[v] += share;
    }
    // Dangling mass is redistributed uniformly along with the teleport.
    const double base = (1.0 - damping) / static_cast<double>(n) +
                        damping * dangling / static_cast<double>(n);
    for (std::size_t v = 0; v < n; ++v) next[v] = base + damping * next[v];
    rank.swap(next);
  }
  return rank;
}

PrNetResult select_prnet(const netlist::Netlist& netlist,
                         const PrNetOptions& options) {
  // Rank on the *reversed* dependency graph: a flop is central when many
  // downstream state elements depend on it (influence centrality), which is
  // how PRNet scores reconstruction value. Forward PageRank would instead
  // reward flops with many drivers (CRC/accumulator sinks).
  const auto forward = flop_dependency_graph(netlist);
  std::vector<std::vector<std::size_t>> reversed(forward.size());
  for (std::size_t u = 0; u < forward.size(); ++u) {
    for (std::size_t v : forward[u]) reversed[v].push_back(u);
  }
  PrNetResult result;
  result.ranks = pagerank(reversed, options.damping, options.iterations);

  const auto& flops = netlist.flops();
  std::vector<std::size_t> order(flops.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (result.ranks[a] != result.ranks[b])
      return result.ranks[a] > result.ranks[b];
    return a < b;  // deterministic tie-break
  });
  const std::size_t take = std::min(options.budget_bits, flops.size());
  for (std::size_t i = 0; i < take; ++i)
    result.selected.push_back(flops[order[i]]);
  return result;
}

}  // namespace tracesel::baseline
