#pragma once
// Hybrid trace configuration — a future-work direction the paper's
// contrast implies: spend the trace buffer primarily on application-level
// messages (for use-case debug), then give whatever bits remain to
// SRR-greedy flip-flop selection on the gate-level netlist (for low-level
// waveform reconstruction around the message events). Message-first order
// matters: flow coverage is the paper's demonstrated priority; the SRR
// bits are a bonus, not a competitor.

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "selection/selector.hpp"

namespace tracesel::baseline {

struct HybridOptions {
  std::uint32_t buffer_width = 32;
  bool packing = true;                ///< Step 3 before handing bits to SRR
  std::size_t sim_cycles = 16;        ///< golden window for SRR evaluation
  std::uint64_t seed = 7;
};

struct HybridResult {
  selection::SelectionResult messages;    ///< application-level selection
  std::vector<netlist::NetId> extra_flops;///< SRR-chosen flops in leftover
  double srr = 0.0;                       ///< SRR of the extra flops
  std::uint32_t used_width = 0;           ///< messages + flop bits

  double utilization(std::uint32_t buffer_width) const {
    return buffer_width
               ? static_cast<double>(used_width) / buffer_width
               : 0.0;
  }
};

/// Runs message selection on `interleaving`, then fills the leftover bits
/// with greedy-SRR flops from `netlist` (1 bit per flop).
HybridResult select_hybrid(const flow::MessageCatalog& catalog,
                           const flow::InterleavedFlow& interleaving,
                           const netlist::Netlist& netlist,
                           const HybridOptions& options = {});

}  // namespace tracesel::baseline
