#include "baseline/hybrid.hpp"

#include "baseline/sigset.hpp"

namespace tracesel::baseline {

HybridResult select_hybrid(const flow::MessageCatalog& catalog,
                           const flow::InterleavedFlow& interleaving,
                           const netlist::Netlist& netlist,
                           const HybridOptions& options) {
  HybridResult result;

  // Phase 1: application-level messages first.
  const selection::MessageSelector selector(catalog, interleaving);
  selection::SelectorConfig cfg;
  cfg.buffer_width = options.buffer_width;
  cfg.packing = options.packing;
  result.messages = selector.select(cfg);
  result.used_width = result.messages.used_width;

  // Phase 2: leftover bits go to SRR-greedy flop selection.
  const std::uint32_t leftover =
      options.buffer_width - result.messages.used_width;
  if (leftover > 0) {
    SigSeTOptions srr_opt;
    srr_opt.budget_bits = leftover;
    srr_opt.sim_cycles = options.sim_cycles;
    srr_opt.seed = options.seed;
    const auto srr = select_sigset(netlist, srr_opt);
    result.extra_flops = srr.selected;
    result.srr = srr.srr;
    result.used_width +=
        static_cast<std::uint32_t>(result.extra_flops.size());
  }
  return result;
}

}  // namespace tracesel::baseline
