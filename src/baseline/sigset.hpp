#pragma once
// SigSeT-style SRR-based trace signal selection (re-implementation of the
// approach class of Basu & Mishra [2] for the Sec. 5.4 comparison):
// greedily grow the traced flop set, each round adding the flip-flop whose
// addition maximizes the state-restoration ratio measured on a golden
// simulation window. This is the "signal reconstruction ability" objective
// the paper argues is the wrong optimization target for use-case debug.

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "netlist/restoration.hpp"

namespace tracesel::baseline {

struct SigSeTOptions {
  std::size_t budget_bits = 32;  ///< flops to select (1 bit each)
  std::size_t sim_cycles = 24;   ///< golden window used to evaluate SRR
  std::uint64_t seed = 7;        ///< stimulus seed
};

struct SigSeTResult {
  std::vector<netlist::NetId> selected;  ///< flop nets, selection order
  double srr = 0.0;                      ///< final SRR of the selection
};

SigSeTResult select_sigset(const netlist::Netlist& netlist,
                           const SigSeTOptions& options = {});

/// The golden flop-value matrix [cycle][flop index] both baselines and
/// tests reuse: random primary inputs from `seed`.
std::vector<std::vector<bool>> golden_flop_trace(
    const netlist::Netlist& netlist, std::size_t cycles, std::uint64_t seed);

}  // namespace tracesel::baseline
