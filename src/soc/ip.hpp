#pragma once
// IP blocks of the OpenSPARC T2 I/O and interrupt subsystem that
// participate in the paper's usage scenarios (Fig. 3 / Table 1).

#include <string>
#include <string_view>

namespace tracesel::soc {

/// The hardware IPs our transaction-level T2 model distinguishes.
enum class Ip {
  kNcu,  ///< Non-cacheable unit
  kDmu,  ///< Data management unit (PCIe side)
  kSiu,  ///< System interface unit
  kMcu,  ///< Memory controller unit
  kCcx,  ///< Cache crossbar
  kCpu,  ///< SPARC core complex (request source/sink)
};

inline constexpr std::string_view to_string(Ip ip) {
  switch (ip) {
    case Ip::kNcu: return "NCU";
    case Ip::kDmu: return "DMU";
    case Ip::kSiu: return "SIU";
    case Ip::kMcu: return "MCU";
    case Ip::kCcx: return "CCX";
    case Ip::kCpu: return "CPU";
  }
  return "?";
}

inline std::string ip_name(Ip ip) { return std::string(to_string(ip)); }

}  // namespace tracesel::soc
