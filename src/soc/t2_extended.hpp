#pragma once
// Extended T2 flow variants with protocol branch points.
//
// The base T2Design models the happy paths of Table 1. Real T2 protocols
// branch: a Mondo interrupt can be NACKed and retried, and a PIO read can
// be retried after a credit miss. These variants exercise the flow model
// on genuinely branching DAGs (multiple outgoing transitions per state,
// multiple stop states) and give the benches an ablation axis: how does
// selection behave when flows have alternative executions?

#include "flow/flow.hpp"
#include "flow/message.hpp"
#include "soc/ip.hpp"

namespace tracesel::soc {

/// Catalog + branching flows. Message names/widths are a superset of
/// T2Design's (same 17 base messages plus the branch messages), so results
/// are directly comparable.
class T2ExtendedDesign {
 public:
  T2ExtendedDesign();

  const flow::MessageCatalog& catalog() const { return catalog_; }

  /// Mondo with a NACK/retry branch:
  ///   Delivered --mondoacknack--> Done           (accepted)
  ///   Delivered --mondonack-----> Nacked --reqretry--> Requeued (dropped)
  const flow::Flow& mondo_nack() const { return *mondo_nack_; }

  /// PIO read with a credit-miss retry branch:
  ///   Issued --dmurd-->  Fetch ... Done          (hit)
  ///   Issued --piomiss--> Miss --pioretry--> Retried (gave up)
  const flow::Flow& pior_retry() const { return *pior_retry_; }

  // Base message ids shared with T2Design naming.
  flow::MessageId ncupior, dmurd, siurtn, dmuncud, piordcrd;
  flow::MessageId reqtot, grant, dmusiidata, siincu, mondoacknack;
  // Branch messages.
  flow::MessageId mondonack, reqretry, piomiss, pioretry;

 private:
  flow::MessageCatalog catalog_;
  std::optional<flow::Flow> mondo_nack_;
  std::optional<flow::Flow> pior_retry_;
};

}  // namespace tracesel::soc
