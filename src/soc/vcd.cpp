#include "soc/vcd.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace tracesel::soc {

namespace {

/// Compact VCD identifier for index n: base-94 over printable ASCII.
std::string vcd_id(std::size_t n) {
  std::string id;
  do {
    id.push_back(static_cast<char>('!' + n % 94));
    n /= 94;
  } while (n != 0);
  return id;
}

std::string binary(std::uint64_t value, std::uint32_t width) {
  std::string bits;
  bits.reserve(width);
  for (std::uint32_t i = width; i-- > 0;)
    bits.push_back((value >> i) & 1 ? '1' : '0');
  return bits;
}

struct Var {
  std::string name;
  std::uint32_t width = 1;
  std::string id;
};

void emit_header(std::ostringstream& os, std::string_view module,
                 const std::vector<Var>& vars) {
  os << "$date reproduction run $end\n"
     << "$version tracesel $end\n"
     << "$timescale 1ns $end\n"
     << "$scope module " << module << " $end\n";
  for (const Var& v : vars) {
    os << "$var wire " << v.width << ' ' << v.id << ' ' << v.name
       << " $end\n";
  }
  os << "$upscope $end\n$enddefinitions $end\n";
}

void emit_change(std::ostringstream& os, const Var& v, std::uint64_t value) {
  if (v.width == 1) {
    os << (value & 1 ? '1' : '0') << v.id << '\n';
  } else {
    os << 'b' << binary(value, v.width) << ' ' << v.id << '\n';
  }
}

}  // namespace

std::string to_vcd(const flow::MessageCatalog& catalog,
                   const std::vector<SignalEvent>& events,
                   std::string_view module) {
  // Collect distinct signals and give them widths: "<msg>_data" uses the
  // catalog width; valids are single-bit; other aux fields 8 bits.
  std::map<std::string, Var> vars;
  for (const SignalEvent& ev : events) {
    if (vars.contains(ev.signal)) continue;
    Var v;
    v.name = ev.signal;
    const auto underscore = ev.signal.rfind('_');
    const std::string base =
        underscore == std::string::npos ? ev.signal
                                        : ev.signal.substr(0, underscore);
    const std::string kind =
        underscore == std::string::npos ? ""
                                        : ev.signal.substr(underscore + 1);
    if (kind == "valid") {
      v.width = 1;
    } else if (kind == "data") {
      const auto id = catalog.find(base);
      v.width = id ? catalog.get(*id).width : 64;
    } else {
      v.width = 8;
    }
    v.id = vcd_id(vars.size());
    vars.emplace(ev.signal, std::move(v));
  }

  std::ostringstream os;
  std::vector<Var> ordered;
  for (const auto& [name, v] : vars) ordered.push_back(v);
  emit_header(os, module, ordered);

  // Group events by cycle; de-assert valid strobes one time unit later.
  std::map<std::uint64_t, std::vector<std::pair<const Var*, std::uint64_t>>>
      timeline;
  for (const SignalEvent& ev : events) {
    const Var& v = vars.at(ev.signal);
    timeline[ev.cycle].emplace_back(&v, ev.value);
    if (v.width == 1 && ev.value != 0)
      timeline[ev.cycle + 1].emplace_back(&v, 0);
  }
  for (const auto& [cycle, changes] : timeline) {
    os << '#' << cycle << '\n';
    for (const auto& [v, value] : changes) emit_change(os, *v, value);
  }
  return os.str();
}

std::string trace_to_vcd(const flow::MessageCatalog& catalog,
                         const std::vector<TraceRecord>& records,
                         std::string_view module) {
  std::map<flow::MessageId, Var> value_vars;
  std::map<flow::MessageId, Var> strobe_vars;
  std::size_t next = 0;
  for (const TraceRecord& r : records) {
    if (value_vars.contains(r.msg.message)) continue;
    const flow::Message& m = catalog.get(r.msg.message);
    // The recorded field width: full message width, or the widest partial
    // capture observed (partial records were truncated already).
    Var v;
    v.name = m.name;
    v.width = m.width;
    v.id = vcd_id(next++);
    value_vars.emplace(r.msg.message, std::move(v));
    Var s;
    s.name = m.name + "_capture";
    s.width = 1;
    s.id = vcd_id(next++);
    strobe_vars.emplace(r.msg.message, std::move(s));
  }

  std::vector<Var> ordered;
  for (const auto& [id, v] : value_vars) {
    ordered.push_back(v);
    ordered.push_back(strobe_vars.at(id));
  }
  std::ostringstream os;
  emit_header(os, module, ordered);

  std::map<std::uint64_t, std::vector<std::pair<const Var*, std::uint64_t>>>
      timeline;
  for (const TraceRecord& r : records) {
    timeline[r.cycle].emplace_back(&value_vars.at(r.msg.message), r.value);
    timeline[r.cycle].emplace_back(&strobe_vars.at(r.msg.message), 1);
    timeline[r.cycle + 1].emplace_back(&strobe_vars.at(r.msg.message), 0);
  }
  for (const auto& [cycle, changes] : timeline) {
    os << '#' << cycle << '\n';
    for (const auto& [v, value] : changes) emit_change(os, *v, value);
  }
  return os.str();
}

}  // namespace tracesel::soc
