#include "soc/t2_design.hpp"

#include <stdexcept>

#include "flow/flow_builder.hpp"

namespace tracesel::soc {

using flow::FlowBuilder;
using flow::Message;
using flow::Subgroup;

flow::MessageCatalog T2Design::build_catalog(T2Design& d) {
  flow::MessageCatalog cat;

  // PIO read (NCU -> DMU -> SIU and back). Request and data-return carry
  // full command/payload content and are wide; credits are narrow.
  d.ncupior = cat.add("ncupior", 10, "NCU", "DMU");
  d.dmurd = cat.add("dmurd", 6, "DMU", "SIU");
  d.siurtn = cat.add("siurtn", 9, "SIU", "DMU");
  d.dmuncud = cat.add(Message{"dmuncud", 16, "DMU", "NCU",
                              {Subgroup{"piorstat", 7}}});
  d.piordcrd = cat.add("piordcrd", 4, "DMU", "NCU");

  // PIO write (NCU -> DMU, credit back).
  d.ncupiow = cat.add("ncupiow", 14, "NCU", "DMU");
  d.piowcrd = cat.add("piowcrd", 4, "DMU", "NCU");

  // NCU upstream (NCU -> CCX toward the cores).
  d.ncuupreq = cat.add("ncuupreq", 16, "NCU", "CCX");
  d.ccxgnt = cat.add("ccxgnt", 5, "CCX", "NCU");
  d.ncuupd = cat.add(Message{"ncuupd", 16, "NCU", "CCX",
                             {Subgroup{"upd_tid", 6}}});

  // NCU downstream (CCX -> NCU from the cores / MCU side).
  d.ccxdreq = cat.add(Message{"ccxdreq", 17, "CCX", "NCU",
                              {Subgroup{"dreq_tid", 5}}});
  d.ncudack = cat.add("ncudack", 4, "NCU", "CCX");

  // Mondo interrupt (DMU -> SIU -> NCU, ack back to DMU). dmusiidata is
  // the paper's 20-bit example with the 6-bit cputhreadid subgroup
  // (Sec. 3.3 / Sec. 5.7).
  d.reqtot = cat.add("reqtot", 3, "DMU", "SIU");
  d.grant = cat.add("grant", 3, "SIU", "DMU");
  d.dmusiidata = cat.add(Message{"dmusiidata", 20, "DMU", "SIU",
                                 {Subgroup{"cputhreadid", 6},
                                  Subgroup{"mondopayld", 8}}});
  d.siincu = cat.add("siincu", 4, "SIU", "NCU");
  d.mondoacknack = cat.add("mondoacknack", 2, "NCU", "DMU");

  // DMA read (DMU -> SIU -> MCU and back). Sec. 5.7's root-cause analysis
  // checks for "prior DMA read messages" before an interrupt may fire.
  d.dmardreq = cat.add("dmardreq", 12, "DMU", "SIU");
  d.siumcurd = cat.add("siumcurd", 10, "SIU", "MCU");
  d.mcurdata = cat.add(Message{"mcurdata", 16, "MCU", "SIU",
                               {Subgroup{"rdtag", 5}}});
  d.dmardone = cat.add("dmardone", 3, "SIU", "DMU");

  // DMA write.
  d.dmawrreq = cat.add("dmawrreq", 12, "DMU", "SIU");
  d.siumcuwr = cat.add("siumcuwr", 14, "SIU", "MCU");
  d.dmawrack = cat.add("dmawrack", 3, "MCU", "DMU");

  return cat;
}

flow::Flow T2Design::build_pior(const T2Design& d) {
  FlowBuilder b("PIOR");
  b.state("Idle", FlowBuilder::kInitial)
      .state("Issued")
      .state("Fetch")
      .state("Return", FlowBuilder::kAtomic)
      .state("DataRdy")
      .state("Done", FlowBuilder::kStop)
      .transition("Idle", d.ncupior, "Issued")
      .transition("Issued", d.dmurd, "Fetch")
      .transition("Fetch", d.siurtn, "Return")
      .transition("Return", d.dmuncud, "DataRdy")
      .transition("DataRdy", d.piordcrd, "Done");
  return b.build(d.catalog_);
}

flow::Flow T2Design::build_piow(const T2Design& d) {
  FlowBuilder b("PIOW");
  b.state("Idle", FlowBuilder::kInitial)
      .state("Issued")
      .state("Done", FlowBuilder::kStop)
      .transition("Idle", d.ncupiow, "Issued")
      .transition("Issued", d.piowcrd, "Done");
  return b.build(d.catalog_);
}

flow::Flow T2Design::build_ncuu(const T2Design& d) {
  FlowBuilder b("NCUU");
  b.state("Idle", FlowBuilder::kInitial)
      .state("Req")
      .state("Gnt", FlowBuilder::kAtomic)
      .state("Done", FlowBuilder::kStop)
      .transition("Idle", d.ncuupreq, "Req")
      .transition("Req", d.ccxgnt, "Gnt")
      .transition("Gnt", d.ncuupd, "Done");
  return b.build(d.catalog_);
}

flow::Flow T2Design::build_ncud(const T2Design& d) {
  FlowBuilder b("NCUD");
  b.state("Idle", FlowBuilder::kInitial)
      .state("Req")
      .state("Done", FlowBuilder::kStop)
      .transition("Idle", d.ccxdreq, "Req")
      .transition("Req", d.ncudack, "Done");
  return b.build(d.catalog_);
}

flow::Flow T2Design::build_mondo(const T2Design& d) {
  FlowBuilder b("Mon");
  b.state("Idle", FlowBuilder::kInitial)
      .state("Req")
      .state("Granted")
      .state("Xfer", FlowBuilder::kAtomic)
      .state("Delivered")
      .state("Done", FlowBuilder::kStop)
      .transition("Idle", d.reqtot, "Req")
      .transition("Req", d.grant, "Granted")
      .transition("Granted", d.dmusiidata, "Xfer")
      .transition("Xfer", d.siincu, "Delivered")
      .transition("Delivered", d.mondoacknack, "Done");
  return b.build(d.catalog_);
}

flow::Flow T2Design::build_dmar(const T2Design& d) {
  FlowBuilder b("DMAR");
  b.state("Idle", FlowBuilder::kInitial)
      .state("Req")
      .state("Fwd")
      .state("Data", FlowBuilder::kAtomic)
      .state("Done", FlowBuilder::kStop)
      .transition("Idle", d.dmardreq, "Req")
      .transition("Req", d.siumcurd, "Fwd")
      .transition("Fwd", d.mcurdata, "Data")
      .transition("Data", d.dmardone, "Done");
  return b.build(d.catalog_);
}

flow::Flow T2Design::build_dmaw(const T2Design& d) {
  FlowBuilder b("DMAW");
  b.state("Idle", FlowBuilder::kInitial)
      .state("Req")
      .state("Fwd", FlowBuilder::kAtomic)
      .state("Done", FlowBuilder::kStop)
      .transition("Idle", d.dmawrreq, "Req")
      .transition("Req", d.siumcuwr, "Fwd")
      .transition("Fwd", d.dmawrack, "Done");
  return b.build(d.catalog_);
}

T2Design::T2Design()
    : catalog_(build_catalog(*this)),
      pior_(build_pior(*this)),
      piow_(build_piow(*this)),
      ncuu_(build_ncuu(*this)),
      ncud_(build_ncud(*this)),
      mondo_(build_mondo(*this)),
      dmar_(build_dmar(*this)),
      dmaw_(build_dmaw(*this)) {}

const flow::Flow& T2Design::flow_by_name(std::string_view name) const {
  if (name == "PIOR") return pior_;
  if (name == "PIOW") return piow_;
  if (name == "NCUU") return ncuu_;
  if (name == "NCUD") return ncud_;
  if (name == "Mon") return mondo_;
  if (name == "DMAR") return dmar_;
  if (name == "DMAW") return dmaw_;
  throw std::out_of_range("T2Design: unknown flow '" + std::string(name) +
                          "'");
}

}  // namespace tracesel::soc
