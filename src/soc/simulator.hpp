#pragma once
// Transaction-level SoC simulator — the design-under-test substrate that
// stands in for RTL simulation of OpenSPARC T2 (see DESIGN.md).
//
// A *session* executes one interleaved round of the scenario: every
// participating flow instance runs from its initial state to its stop state
// under the Def. 5 scheduling rules (only the atomic-state holder may move
// while one exists). The simulator emits signal events for every message
// beat; a Monitor (Fig. 4) reassembles them into flow messages. Injected
// bugs perturb emission: corrupt, drop (instance stalls -> hang), misroute,
// or wrong-decode (poisons the instance's later messages -> bad trap at
// session end).
//
// Content values are a deterministic function of (message, instance,
// session, occurrence), so a golden run and a buggy run with equal seeds
// differ exactly where bug effects landed — which is what the bug-coverage
// metric of Sec. 5.5 diffs.

#include <cstdint>
#include <string>
#include <vector>

#include "bug/bug.hpp"
#include "soc/monitor.hpp"
#include "soc/scenario.hpp"
#include "soc/t2_design.hpp"
#include "util/rng.hpp"

namespace tracesel::soc {

struct SimOptions {
  std::uint32_t sessions = 1;
  std::uint64_t seed = 1;
  /// Safety valve against scheduling livelock; generous for our flows.
  std::uint32_t max_steps_per_session = 100000;
};

struct SimResult {
  std::vector<SignalEvent> signals;    ///< raw interface activity
  std::vector<TimedMessage> messages;  ///< Monitor-reconstructed messages
  bool failed = false;
  std::string failure;                 ///< e.g. "FAIL: Bad Trap"
  std::uint32_t fail_session = 0;
  std::uint64_t fail_cycle = 0;
  std::uint64_t total_cycles = 0;
  /// Observed messages until the first symptom (the paper reports up to
  /// 457); 0 when no failure occurred.
  std::size_t messages_to_symptom = 0;
};

class SocSimulator {
 public:
  /// T2 convenience: simulate a Table 1 usage scenario.
  SocSimulator(const T2Design& design, const Scenario& scenario);

  /// General form: any catalog and flow set (e.g. the branching flows of
  /// T2ExtendedDesign, or flows parsed from a .flow spec).
  SocSimulator(const flow::MessageCatalog& catalog,
               std::vector<const flow::Flow*> flows,
               std::uint32_t instances_per_flow);

  /// Adds an injected bug; takes effect on subsequent run() calls.
  void inject(bug::Bug bug);
  void clear_bugs();
  const std::vector<bug::Bug>& bugs() const { return bugs_; }

  SimResult run(const SimOptions& options = {}) const;

  /// The golden content value of the `occurrence`-th emission of message
  /// `m` by instance `index` in `session`. Deterministic; exposed so tests
  /// and the bug-coverage diff can recompute expectations.
  static std::uint64_t golden_value(flow::MessageId m, std::uint32_t index,
                                    std::uint32_t session,
                                    std::uint32_t occurrence,
                                    std::uint32_t width);

  const flow::MessageCatalog& catalog() const { return *catalog_; }
  const std::vector<const flow::Flow*>& flows() const { return flows_; }
  std::uint32_t instances_per_flow() const { return instances_per_flow_; }

 private:
  /// The symptom string of the bug that fired, or the generic bad trap.
  std::string failure_text(int bug_id) const;

  const flow::MessageCatalog* catalog_;
  std::vector<const flow::Flow*> flows_;
  std::uint32_t instances_per_flow_ = 2;
  std::vector<bug::Bug> bugs_;
};

}  // namespace tracesel::soc
