#pragma once
// The on-chip trace buffer model. Width is the number of bits recordable
// per entry (the paper's Table 3 assumes 32); depth is the number of
// entries before wrap-around. configure() lays out the fields of a
// selection result (Step 2 messages at full width, Step 3 subgroups at
// subgroup width); record() then captures exactly the observable messages,
// truncating values of packed parents to the subgroup's width.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "flow/message.hpp"
#include "selection/selector.hpp"
#include "soc/monitor.hpp"

namespace tracesel::soc {

struct TraceBufferConfig {
  std::uint32_t width = 32;  ///< bits per entry
  std::size_t depth = 4096;  ///< entries before wrap
};

/// Trace qualification: an optional capture window. Real debug buses gate
/// recording on trigger events so the shallow buffer spends its depth on
/// the interesting region. The trigger comparators watch the *message
/// stream* (any message, traced or not); only observable messages are
/// recorded inside the window.
struct TraceTrigger {
  /// Start capturing when this message is seen (kInvalidMessage = armed
  /// from reset).
  flow::MessageId start = flow::kInvalidMessage;
  /// Stop capturing when this message is seen (kInvalidMessage = never).
  flow::MessageId stop = flow::kInvalidMessage;
  /// Record the start/stop messages themselves (if observable).
  bool include_trigger = true;
};

/// One captured trace entry.
struct TraceRecord {
  flow::IndexedMessage msg;
  std::uint64_t cycle = 0;
  std::uint64_t value = 0;  ///< truncated to the recorded field width
  bool partial = false;     ///< captured through a packed subgroup
  std::uint32_t session = 0;
  std::string dst;          ///< routed destination IP (misroute evidence)
};

class TraceBuffer {
 public:
  explicit TraceBuffer(TraceBufferConfig config = {});

  /// Installs the field layout of a selection. Throws std::invalid_argument
  /// if the selection needs more bits than the buffer width.
  void configure(const flow::MessageCatalog& catalog,
                 const selection::SelectionResult& selection);

  /// True if the message is observable under the configured layout.
  bool observes(flow::MessageId m) const;

  /// Installs a capture window; resets the trigger state machine.
  /// configure() clears any installed trigger.
  void set_trigger(const TraceTrigger& trigger);

  /// True while the capture window is open.
  bool capturing() const { return state_ == TriggerState::kCapturing; }

  /// Captures a message if observable; silently ignores others (they do
  /// not reach the buffer). Oldest entries are overwritten after `depth`.
  void record(const TimedMessage& tm);

  /// Records in capture order, oldest first (post-wrap view).
  std::vector<TraceRecord> records() const;

  std::size_t size() const;
  std::size_t overwritten() const { return overwritten_; }

  /// Bits of the entry consumed by the configured fields / total width.
  double utilization() const;

  const TraceBufferConfig& config() const { return config_; }

 private:
  struct Field {
    std::uint32_t width = 0;
    bool partial = false;
  };

  enum class TriggerState { kCapturing, kWaiting, kStopped };

  TraceBufferConfig config_;
  TraceTrigger trigger_;
  TriggerState state_ = TriggerState::kCapturing;
  std::unordered_map<flow::MessageId, Field> fields_;
  std::uint32_t used_bits_ = 0;
  std::vector<TraceRecord> ring_;
  std::size_t next_ = 0;
  std::size_t overwritten_ = 0;
  bool wrapped_ = false;
};

}  // namespace tracesel::soc
