#pragma once
// Usage scenarios (Table 1): which flows a validation scenario exercises,
// which IPs participate, and how many potential architectural root causes
// its failure analysis must consider.

#include <cstdint>
#include <string>
#include <vector>

#include "flow/interleaved_flow.hpp"
#include "soc/ip.hpp"
#include "soc/t2_design.hpp"

namespace tracesel::soc {

struct Scenario {
  int id = 0;                            ///< 1..3
  std::string name;
  std::vector<std::string> flow_names;   ///< Table 1 short names
  std::vector<Ip> ips;                   ///< participating IPs (col 7)
  std::size_t num_root_causes = 0;       ///< potential root causes (col 8)
  std::uint32_t instances_per_flow = 2;  ///< concurrent indexed instances
};

/// The three usage scenarios of Table 1.
Scenario scenario1();
Scenario scenario2();
Scenario scenario3();

/// Extension scenario (not in Table 1): DMA read/write traffic plus the
/// Mondo interrupt flow — the interplay Sec. 5.7's root-cause narrative
/// relies on ("an interrupt is generated only when DMU has credit and all
/// previous DMA reads are done").
Scenario scenario4_dma();

/// The paper's three scenarios (excludes the DMA extension).
std::vector<Scenario> all_scenarios();
Scenario scenario_by_id(int id);

/// Resolves a scenario's flow list against a design.
std::vector<const flow::Flow*> scenario_flows(const T2Design& design,
                                              const Scenario& scenario);

/// Builds the interleaved flow of the scenario: instances_per_flow legally
/// indexed instances of each participating flow. `options` selects the
/// engine (symmetry-reduced by default) and the node budget.
flow::InterleavedFlow build_interleaving(
    const T2Design& design, const Scenario& scenario,
    const flow::InterleaveOptions& options = {});

}  // namespace tracesel::soc
