#include "soc/fault_injector.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/rng.hpp"

namespace tracesel::soc {

std::string to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDrop: return "drop";
    case FaultKind::kCorrupt: return "corrupt";
    case FaultKind::kDuplicate: return "duplicate";
    case FaultKind::kReorder: return "reorder";
    case FaultKind::kTruncate: return "truncate";
    case FaultKind::kOverflow: return "overflow";
  }
  return "?";
}

util::Result<FaultKind> fault_kind_from_string(std::string_view name) {
  for (const FaultKind k : all_fault_kinds()) {
    if (name == to_string(k)) return k;
  }
  return util::Error{util::ErrorCode::kParse,
                     "unknown fault kind '" + std::string(name) +
                         "' (expected drop, corrupt, duplicate, reorder, "
                         "truncate or overflow)"};
}

util::Result<std::vector<FaultKind>> parse_fault_kinds(std::string_view csv) {
  std::vector<FaultKind> kinds;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string_view item =
        csv.substr(start, comma == std::string_view::npos ? std::string_view::npos
                                                          : comma - start);
    if (!item.empty()) {
      const auto parsed = fault_kind_from_string(item);
      if (!parsed.ok()) return parsed.error();
      if (std::find(kinds.begin(), kinds.end(), parsed.value()) == kinds.end())
        kinds.push_back(parsed.value());
    }
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  if (kinds.empty())
    return util::Error{util::ErrorCode::kParse, "empty fault kind list"};
  return kinds;
}

std::vector<FaultKind> all_fault_kinds() {
  return {FaultKind::kDrop,      FaultKind::kCorrupt,
          FaultKind::kDuplicate, FaultKind::kReorder,
          FaultKind::kTruncate,  FaultKind::kOverflow};
}

std::vector<FaultKind> FaultProfile::effective_kinds() const {
  return kinds.empty() ? all_fault_kinds() : kinds;
}

std::size_t FaultStats::total_injected() const {
  std::size_t total = 0;
  for (const std::size_t n : injected) total += n;
  return total;
}

double FaultStats::fault_fraction() const {
  if (input_messages == 0) return 0.0;
  return std::min(1.0, static_cast<double>(total_injected()) /
                           static_cast<double>(input_messages));
}

FaultInjector::FaultInjector(const flow::MessageCatalog& catalog,
                             FaultProfile profile)
    : catalog_(&catalog), profile_(std::move(profile)) {
  std::unordered_set<std::string> seen;
  for (const flow::Message& m : catalog) {
    if (seen.insert(m.source_ip).second) ips_.push_back(m.source_ip);
    if (seen.insert(m.dest_ip).second) ips_.push_back(m.dest_ip);
  }
}

std::vector<TimedMessage> FaultInjector::apply(
    const std::vector<TimedMessage>& input, std::uint64_t salt,
    FaultStats* stats) const {
  FaultStats local;
  local.input_messages = input.size();

  if (!profile_.enabled() || input.empty()) {
    local.delivered_messages = input.size();
    if (stats != nullptr) *stats = local;
    return input;
  }

  // Fresh, decorrelated stream per (seed, salt): a retried capture of the
  // same execution sees different faults, like a re-run on real silicon.
  util::Rng rng(profile_.seed ^ (salt * 0x9E3779B97F4A7C15ull + salt));

  std::array<bool, kNumFaultKinds> on{};
  for (const FaultKind k : profile_.effective_kinds())
    on[static_cast<std::size_t>(k)] = true;
  const auto enabled = [&](FaultKind k) {
    return on[static_cast<std::size_t>(k)];
  };
  auto count = [&](FaultKind k) {
    ++local.injected[static_cast<std::size_t>(k)];
  };

  // Per-session totals drive the derived overflow capacity.
  std::unordered_map<std::uint32_t, std::size_t> session_total;
  for (const TimedMessage& tm : input) ++session_total[tm.session];
  const auto capacity_of = [&](std::uint32_t session) -> std::size_t {
    if (profile_.channel_capacity > 0) return profile_.channel_capacity;
    const double keep = std::max(0.0, 1.0 - profile_.rate);
    return std::max<std::size_t>(
        1, static_cast<std::size_t>(keep *
                                    static_cast<double>(
                                        session_total[session])));
  };

  std::vector<TimedMessage> out;
  out.reserve(input.size());
  std::unordered_map<std::uint32_t, std::size_t> session_delivered;
  std::unordered_set<std::uint32_t> truncated_sessions;

  for (const TimedMessage& tm : input) {
    if (truncated_sessions.contains(tm.session)) {
      count(FaultKind::kTruncate);
      continue;
    }
    if (enabled(FaultKind::kTruncate) &&
        rng.chance(profile_.rate * profile_.truncate_rate_scale)) {
      truncated_sessions.insert(tm.session);
      count(FaultKind::kTruncate);
      continue;
    }
    if (enabled(FaultKind::kOverflow) &&
        session_delivered[tm.session] >= capacity_of(tm.session)) {
      count(FaultKind::kOverflow);
      continue;
    }
    if (enabled(FaultKind::kDrop) && rng.chance(profile_.rate)) {
      count(FaultKind::kDrop);
      continue;
    }

    TimedMessage delivered = tm;
    if (enabled(FaultKind::kCorrupt) && rng.chance(profile_.rate)) {
      count(FaultKind::kCorrupt);
      const std::uint64_t mode = rng.below(10);
      if (mode < 6) {
        // Content corruption: flip 1..3 bits inside the message's width.
        const std::uint32_t width =
            std::max<std::uint32_t>(1, catalog_->get(tm.msg.message).width);
        const std::uint64_t flips = rng.between(1, 3);
        for (std::uint64_t f = 0; f < flips; ++f)
          delivered.value ^= std::uint64_t{1} << rng.below(width);
      } else if (mode < 8) {
        // Sideband session ordinal garbled beyond any real session.
        delivered.session += 1000 + static_cast<std::uint32_t>(rng.below(1000));
      } else {
        // Routed-destination label garbled: half the time to a real other
        // IP (looks like a misroute), half to electrical garbage.
        if (rng.chance(0.5) && ips_.size() > 1) {
          std::string other = delivered.dst;
          while (other == delivered.dst)
            other = ips_[rng.index(ips_.size())];
          delivered.dst = std::move(other);
        } else {
          delivered.dst = "<garbled>";
        }
      }
    }

    out.push_back(delivered);
    ++session_delivered[tm.session];
    if (enabled(FaultKind::kDuplicate) && rng.chance(profile_.rate)) {
      count(FaultKind::kDuplicate);
      TimedMessage dup = delivered;
      ++dup.cycle;  // the re-delivery lands a beat later
      out.push_back(dup);
      ++session_delivered[tm.session];
    }
  }

  // Bounded reordering: displace flagged beats forward by up to the window.
  if (enabled(FaultKind::kReorder) && out.size() > 1 &&
      profile_.reorder_window > 0) {
    for (std::size_t i = 0; i + 1 < out.size(); ++i) {
      if (!rng.chance(profile_.rate)) continue;
      count(FaultKind::kReorder);
      const std::size_t target =
          std::min(out.size() - 1,
                   i + 1 + static_cast<std::size_t>(
                               rng.below(profile_.reorder_window)));
      std::rotate(out.begin() + static_cast<std::ptrdiff_t>(i),
                  out.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                  out.begin() + static_cast<std::ptrdiff_t>(target) + 1);
    }
  }

  local.delivered_messages = out.size();
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace tracesel::soc
