#include "soc/scenario.hpp"

#include <stdexcept>

namespace tracesel::soc {

Scenario scenario1() {
  return Scenario{1,
                  "Scenario 1",
                  {"PIOR", "PIOW", "Mon"},
                  {Ip::kNcu, Ip::kDmu, Ip::kSiu},
                  /*num_root_causes=*/9,
                  /*instances_per_flow=*/2};
}

Scenario scenario2() {
  return Scenario{2,
                  "Scenario 2",
                  {"NCUU", "NCUD", "Mon"},
                  {Ip::kNcu, Ip::kMcu, Ip::kCcx},
                  /*num_root_causes=*/8,
                  /*instances_per_flow=*/2};
}

Scenario scenario3() {
  return Scenario{3,
                  "Scenario 3",
                  {"PIOR", "PIOW", "NCUU", "NCUD"},
                  {Ip::kNcu, Ip::kMcu, Ip::kDmu, Ip::kSiu},
                  /*num_root_causes=*/9,
                  /*instances_per_flow=*/2};
}

Scenario scenario4_dma() {
  return Scenario{4,
                  "Scenario 4 (DMA extension)",
                  {"DMAR", "DMAW", "Mon"},
                  {Ip::kNcu, Ip::kDmu, Ip::kSiu, Ip::kMcu},
                  /*num_root_causes=*/8,
                  /*instances_per_flow=*/2};
}

std::vector<Scenario> all_scenarios() {
  return {scenario1(), scenario2(), scenario3()};
}

Scenario scenario_by_id(int id) {
  switch (id) {
    case 1: return scenario1();
    case 2: return scenario2();
    case 3: return scenario3();
    case 4: return scenario4_dma();
  }
  throw std::out_of_range("scenario_by_id: id must be 1..4");
}

std::vector<const flow::Flow*> scenario_flows(const T2Design& design,
                                              const Scenario& scenario) {
  std::vector<const flow::Flow*> flows;
  flows.reserve(scenario.flow_names.size());
  for (const std::string& name : scenario.flow_names)
    flows.push_back(&design.flow_by_name(name));
  return flows;
}

flow::InterleavedFlow build_interleaving(const T2Design& design,
                                         const Scenario& scenario,
                                         const flow::InterleaveOptions& options) {
  return flow::InterleavedFlow::build(
      flow::make_instances(scenario_flows(design, scenario),
                           scenario.instances_per_flow),
      options);
}

}  // namespace tracesel::soc
