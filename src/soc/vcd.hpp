#pragma once
// Value Change Dump (IEEE 1364) export of simulation activity and trace
// buffer contents. Post-silicon labs live in waveform viewers; dumping the
// monitor's signal events or the captured trace as VCD lets standard tools
// (gtkwave etc.) display what the trace buffer actually saw.

#include <string>
#include <string_view>
#include <vector>

#include "flow/message.hpp"
#include "soc/monitor.hpp"
#include "soc/trace_buffer.hpp"

namespace tracesel::soc {

/// Renders raw interface signal events as VCD. Each distinct signal name
/// becomes a wire; data wires use the width of their catalog message,
/// auxiliary wires (tag/sess/dst) 8 bits, valid strobes 1 bit (pulsed for
/// one time unit).
std::string to_vcd(const flow::MessageCatalog& catalog,
                   const std::vector<SignalEvent>& events,
                   std::string_view module = "soc");

/// Renders captured trace-buffer records as VCD: one wire per traced
/// message (field width = recorded width), value changes at capture
/// cycles, plus a 1-bit capture strobe per message.
std::string trace_to_vcd(const flow::MessageCatalog& catalog,
                         const std::vector<TraceRecord>& records,
                         std::string_view module = "trace_buffer");

}  // namespace tracesel::soc
