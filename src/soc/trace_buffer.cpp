#include "soc/trace_buffer.hpp"

#include <stdexcept>

#include "util/bits.hpp"

namespace tracesel::soc {

TraceBuffer::TraceBuffer(TraceBufferConfig config) : config_(config) {
  if (config_.width == 0)
    throw std::invalid_argument("TraceBuffer: zero width");
  if (config_.depth == 0)
    throw std::invalid_argument("TraceBuffer: zero depth");
}

void TraceBuffer::configure(const flow::MessageCatalog& catalog,
                            const selection::SelectionResult& selection) {
  std::unordered_map<flow::MessageId, Field> fields;
  std::uint32_t used = 0;
  for (flow::MessageId m : selection.combination.messages) {
    const std::uint32_t w = catalog.get(m).trace_width();
    fields[m] = Field{w, false};
    used += w;
  }
  for (const selection::PackedGroup& pg : selection.packed) {
    if (fields.contains(pg.parent))
      throw std::invalid_argument(
          "TraceBuffer: packed parent already traced at full width");
    fields[pg.parent] = Field{pg.width, true};
    used += pg.width;
  }
  if (used > config_.width)
    throw std::invalid_argument(
        "TraceBuffer: selection wider than the buffer");
  fields_ = std::move(fields);
  used_bits_ = used;
  ring_.clear();
  next_ = 0;
  overwritten_ = 0;
  wrapped_ = false;
  trigger_ = TraceTrigger{};
  state_ = TriggerState::kCapturing;
}

void TraceBuffer::set_trigger(const TraceTrigger& trigger) {
  trigger_ = trigger;
  state_ = trigger.start == flow::kInvalidMessage ? TriggerState::kCapturing
                                                  : TriggerState::kWaiting;
}

bool TraceBuffer::observes(flow::MessageId m) const {
  return fields_.contains(m);
}

void TraceBuffer::record(const TimedMessage& tm) {
  // Trigger state machine sees every message, observable or not.
  bool record_this = state_ == TriggerState::kCapturing;
  if (state_ == TriggerState::kWaiting &&
      tm.msg.message == trigger_.start) {
    state_ = TriggerState::kCapturing;
    record_this = trigger_.include_trigger;
  } else if (state_ == TriggerState::kCapturing &&
             trigger_.stop != flow::kInvalidMessage &&
             tm.msg.message == trigger_.stop) {
    state_ = TriggerState::kStopped;
    record_this = trigger_.include_trigger;
  }
  if (!record_this) return;

  const auto it = fields_.find(tm.msg.message);
  if (it == fields_.end()) return;

  TraceRecord rec;
  rec.msg = tm.msg;
  rec.cycle = tm.cycle;
  rec.value = tm.value & util::max_value_for_width(it->second.width);
  rec.partial = it->second.partial;
  rec.session = tm.session;
  rec.dst = tm.dst;

  if (ring_.size() < config_.depth) {
    ring_.push_back(rec);
  } else {
    ring_[next_] = rec;
    next_ = (next_ + 1) % config_.depth;
    ++overwritten_;
    wrapped_ = true;
  }
}

std::vector<TraceRecord> TraceBuffer::records() const {
  if (!wrapped_) return ring_;
  std::vector<TraceRecord> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i)
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  return out;
}

std::size_t TraceBuffer::size() const { return ring_.size(); }

double TraceBuffer::utilization() const {
  return static_cast<double>(used_bits_) / config_.width;
}

}  // namespace tracesel::soc
