#include "soc/t2_extended.hpp"

#include "flow/flow_builder.hpp"

namespace tracesel::soc {

using flow::FlowBuilder;
using flow::Message;
using flow::Subgroup;

T2ExtendedDesign::T2ExtendedDesign() {
  // Base messages (same names and widths as T2Design).
  ncupior = catalog_.add("ncupior", 10, "NCU", "DMU");
  dmurd = catalog_.add("dmurd", 6, "DMU", "SIU");
  siurtn = catalog_.add("siurtn", 9, "SIU", "DMU");
  dmuncud = catalog_.add(Message{"dmuncud", 16, "DMU", "NCU",
                                 {Subgroup{"piorstat", 7}}});
  piordcrd = catalog_.add("piordcrd", 4, "DMU", "NCU");
  reqtot = catalog_.add("reqtot", 3, "DMU", "SIU");
  grant = catalog_.add("grant", 3, "SIU", "DMU");
  dmusiidata = catalog_.add(Message{"dmusiidata", 20, "DMU", "SIU",
                                    {Subgroup{"cputhreadid", 6},
                                     Subgroup{"mondopayld", 8}}});
  siincu = catalog_.add("siincu", 4, "SIU", "NCU");
  mondoacknack = catalog_.add("mondoacknack", 2, "NCU", "DMU");

  // Branch messages.
  mondonack = catalog_.add("mondonack", 2, "NCU", "DMU");
  reqretry = catalog_.add("reqretry", 3, "DMU", "SIU");
  piomiss = catalog_.add("piomiss", 4, "DMU", "NCU");
  pioretry = catalog_.add("pioretry", 4, "NCU", "DMU");

  {
    FlowBuilder b("MonNack");
    b.state("Idle", FlowBuilder::kInitial)
        .state("Req")
        .state("Granted")
        .state("Xfer", FlowBuilder::kAtomic)
        .state("Delivered")
        .state("Done", FlowBuilder::kStop)
        .state("Nacked")
        .state("Requeued", FlowBuilder::kStop)
        .transition("Idle", reqtot, "Req")
        .transition("Req", grant, "Granted")
        .transition("Granted", dmusiidata, "Xfer")
        .transition("Xfer", siincu, "Delivered")
        .transition("Delivered", mondoacknack, "Done")
        .transition("Delivered", mondonack, "Nacked")
        .transition("Nacked", reqretry, "Requeued");
    mondo_nack_ = b.build(catalog_);
  }
  {
    FlowBuilder b("PiorRetry");
    b.state("Idle", FlowBuilder::kInitial)
        .state("Issued")
        .state("Fetch")
        .state("Return", FlowBuilder::kAtomic)
        .state("DataRdy")
        .state("Done", FlowBuilder::kStop)
        .state("Miss")
        .state("Retried", FlowBuilder::kStop)
        .transition("Idle", ncupior, "Issued")
        .transition("Issued", dmurd, "Fetch")
        .transition("Fetch", siurtn, "Return")
        .transition("Return", dmuncud, "DataRdy")
        .transition("DataRdy", piordcrd, "Done")
        .transition("Issued", piomiss, "Miss")
        .transition("Miss", pioretry, "Retried");
    pior_retry_ = b.build(catalog_);
  }
}

}  // namespace tracesel::soc
