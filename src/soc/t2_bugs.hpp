#pragma once
// The standard injected-bug library for the T2 case studies (Sec. 4).
//
// 14 bugs across 5 IPs, following the two bug sources the paper cites:
// sanitized industrial communication bugs and the Stanford QED bug model
// (wrong command generation, data corruption, malformed requests, wrong
// decode, dropped interrupts, misroutes). Bug ids keep the tech-report
// numbering that the paper's Table 5 references (1..36, sparse).
//
// Five case studies bind a usage scenario to an *active* bug (whose
// symptom the debug sweep chases; Table 6's root-caused functions) plus
// dormant background bugs that arm too late to fire within the run.

#include <string>
#include <vector>

#include "bug/bug.hpp"
#include "soc/t2_design.hpp"

namespace tracesel::soc {

/// The 14-bug standard set, targets resolved against `design`.
std::vector<bug::Bug> standard_bugs(const T2Design& design);

/// Lookup by tech-report id; throws std::out_of_range for unknown ids.
bug::Bug bug_by_id(const T2Design& design, int id);

/// One debugging case study (Tables 3 and 6 rows).
struct CaseStudy {
  int id = 0;           ///< 1..5
  int scenario_id = 0;  ///< Table 3 mapping: cases 1,2 -> scenario 1, etc.
  int active_bug_id = 0;
  std::vector<int> dormant_bug_ids;  ///< armed beyond the run horizon
  std::string root_cause;            ///< Table 6 "Root caused ... function"
};

/// The five case studies of the paper's evaluation.
std::vector<CaseStudy> standard_case_studies();

/// Extension bugs for the DMA scenario (ids 41..43, beyond the paper's 14).
std::vector<bug::Bug> extension_bugs(const T2Design& design);

/// Extension case studies 6-7 on the DMA scenario. Their active bugs come
/// from extension_bugs(); resolve with extension_bug_by_id().
std::vector<CaseStudy> extension_case_studies();
bug::Bug extension_bug_by_id(const T2Design& design, int id);

}  // namespace tracesel::soc
