#include "soc/monitor.hpp"

namespace tracesel::soc {

namespace {

/// Splits "<message>_<kind>" at the last underscore; returns false when the
/// signal has no suffix.
bool split_signal(const std::string& signal, std::string& base,
                  std::string& kind) {
  const auto pos = signal.rfind('_');
  if (pos == std::string::npos || pos == 0 || pos + 1 >= signal.size())
    return false;
  base = signal.substr(0, pos);
  kind = signal.substr(pos + 1);
  return true;
}

/// Decodes the destination IP ordinal the simulator encodes on *_dst.
std::string decode_dst(std::uint64_t value) {
  switch (value) {
    case 0: return "NCU";
    case 1: return "DMU";
    case 2: return "SIU";
    case 3: return "MCU";
    case 4: return "CCX";
    case 5: return "CPU";
  }
  return "?";
}

std::uint64_t encode_dst(const std::string& name) {
  if (name == "NCU") return 0;
  if (name == "DMU") return 1;
  if (name == "SIU") return 2;
  if (name == "MCU") return 3;
  if (name == "CCX") return 4;
  if (name == "CPU") return 5;
  return 6;
}

}  // namespace

Monitor::Monitor(const flow::MessageCatalog& catalog) : catalog_(&catalog) {}

std::optional<TimedMessage> Monitor::on_event(const SignalEvent& event) {
  std::string base, kind;
  if (!split_signal(event.signal, base, kind)) {
    ++ignored_;
    return std::nullopt;
  }
  const auto id = catalog_->find(base);
  if (!id) {
    ++ignored_;
    return std::nullopt;
  }

  Partial& p = partial_[base];
  if (kind == "data") {
    p.data = event.value;
  } else if (kind == "tag") {
    p.tag = static_cast<std::uint32_t>(event.value);
  } else if (kind == "sess") {
    p.session = static_cast<std::uint32_t>(event.value);
  } else if (kind == "dst") {
    p.dst = decode_dst(event.value);
  } else if (kind == "valid") {
    const flow::Message& m = catalog_->get(*id);
    TimedMessage tm;
    tm.msg = flow::IndexedMessage{*id, p.tag};
    tm.cycle = event.cycle;
    tm.value = p.data;
    tm.src = m.source_ip;
    tm.dst = p.dst.empty() ? m.dest_ip : p.dst;
    tm.session = p.session;
    partial_.erase(base);
    messages_.push_back(tm);
    return tm;
  } else {
    ++ignored_;
  }
  return std::nullopt;
}

void Monitor::clear() {
  partial_.clear();
  messages_.clear();
  ignored_ = 0;
}

std::vector<SignalEvent> signal_burst(const flow::Message& message,
                                      const TimedMessage& tm) {
  return {
      SignalEvent{message.name + "_data", tm.value, tm.cycle},
      SignalEvent{message.name + "_tag", tm.msg.index, tm.cycle},
      SignalEvent{message.name + "_sess", tm.session, tm.cycle},
      SignalEvent{message.name + "_dst", encode_dst(tm.dst), tm.cycle},
      SignalEvent{message.name + "_valid", 1, tm.cycle},
  };
}

}  // namespace tracesel::soc
