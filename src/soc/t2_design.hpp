#pragma once
// Transaction-level model of the OpenSPARC T2 flows used in the paper's
// case studies (Table 1):
//
//   PIOR (6 states, 5 messages) — programmed-IO read    NCU/DMU/SIU
//   PIOW (3 states, 2 messages) — programmed-IO write   NCU/DMU
//   NCUU (4 states, 3 messages) — NCU upstream          NCU/CCX/MCU
//   NCUD (3 states, 2 messages) — NCU downstream        CCX/NCU
//   Mon  (6 states, 5 messages) — Mondo interrupt       DMU/SIU/NCU
//
// Message names follow the paper where it names them (dmusiidata with its
// cputhreadid subgroup, siincu, piowcrd, reqtot, grant, mondoacknack —
// Table 7 / Sec. 3.3); the remaining names and all bit widths are modeled
// on the T2 microarchitecture spec at a plausible granularity. The
// selection algorithm consumes only the DAGs and the widths, so these
// stand in faithfully for the RTL signals the authors monitored.

#include "flow/flow.hpp"
#include "flow/message.hpp"
#include "soc/ip.hpp"

namespace tracesel::soc {

/// Immutable bundle of the T2 message catalog and the five flows.
class T2Design {
 public:
  T2Design();

  const flow::MessageCatalog& catalog() const { return catalog_; }

  const flow::Flow& pior() const { return pior_; }
  const flow::Flow& piow() const { return piow_; }
  const flow::Flow& ncuu() const { return ncuu_; }
  const flow::Flow& ncud() const { return ncud_; }
  const flow::Flow& mondo() const { return mondo_; }

  // Extension flows (Sec. 5.7 references DMA reads gating interrupt
  // generation; the paper's collateral contains DMA flows even though
  // Table 1's three scenarios do not exercise them).
  const flow::Flow& dmar() const { return dmar_; }
  const flow::Flow& dmaw() const { return dmaw_; }

  /// Flow lookup by Table 1 short name ("PIOR", "PIOW", "NCUU", "NCUD",
  /// "Mon"); throws std::out_of_range otherwise.
  const flow::Flow& flow_by_name(std::string_view name) const;

  // --- message ids, grouped by flow ---
  // PIO read
  flow::MessageId ncupior, dmurd, siurtn, dmuncud, piordcrd;
  // PIO write
  flow::MessageId ncupiow, piowcrd;
  // NCU upstream
  flow::MessageId ncuupreq, ccxgnt, ncuupd;
  // NCU downstream
  flow::MessageId ccxdreq, ncudack;
  // Mondo interrupt
  flow::MessageId reqtot, grant, dmusiidata, siincu, mondoacknack;
  // DMA read / write (extension flows)
  flow::MessageId dmardreq, siumcurd, mcurdata, dmardone;
  flow::MessageId dmawrreq, siumcuwr, dmawrack;

 private:
  // Construction helpers; build_catalog also assigns the id members (which
  // are declared before catalog_, so they are assignable by then).
  static flow::MessageCatalog build_catalog(T2Design& d);
  static flow::Flow build_pior(const T2Design& d);
  static flow::Flow build_piow(const T2Design& d);
  static flow::Flow build_ncuu(const T2Design& d);
  static flow::Flow build_ncud(const T2Design& d);
  static flow::Flow build_mondo(const T2Design& d);
  static flow::Flow build_dmar(const T2Design& d);
  static flow::Flow build_dmaw(const T2Design& d);

  flow::MessageCatalog catalog_;
  flow::Flow pior_, piow_, ncuu_, ncud_, mondo_, dmar_, dmaw_;
};

}  // namespace tracesel::soc
