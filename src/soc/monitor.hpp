#pragma once
// The System-Verilog-monitor equivalent of the paper's Fig. 4: the design
// under simulation toggles interface *signals*; monitors watch those
// signals and reassemble application-level flow messages from them.
//
// Our transaction simulator emits, for every message beat, a burst of
// signal events on the message's interface:
//   <name>_data  — content value
//   <name>_tag   — flow instance index (the architectural tagging support)
//   <name>_sess  — test session ordinal
//   <name>_dst   — destination IP (routing; misroute bugs change it)
//   <name>_valid — strobe; completes the beat
// The Monitor buffers partial beats per message and publishes a
// TimedMessage when the valid strobe arrives, exactly how the RTL monitors
// of the paper convert OpenSPARC T2 signals to flow messages.

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "flow/message.hpp"
#include "flow/types.hpp"
#include "soc/ip.hpp"

namespace tracesel::soc {

/// One signal-level event observed on the interface.
struct SignalEvent {
  std::string signal;
  std::uint64_t value = 0;
  std::uint64_t cycle = 0;
};

/// One reconstructed application-level message occurrence.
struct TimedMessage {
  flow::IndexedMessage msg;
  std::uint64_t cycle = 0;
  std::uint64_t value = 0;
  std::string src;
  std::string dst;  ///< actual routed destination (may differ under bugs)
  std::uint32_t session = 0;

  friend bool operator==(const TimedMessage&, const TimedMessage&) = default;
};

/// Reassembles messages from interface signal events.
class Monitor {
 public:
  explicit Monitor(const flow::MessageCatalog& catalog);

  /// Feeds one signal event; returns the completed message when the event
  /// was a valid strobe, std::nullopt otherwise. Unknown signals are
  /// ignored (monitors only watch declared interfaces).
  std::optional<TimedMessage> on_event(const SignalEvent& event);

  /// All messages completed so far, in strobe order.
  const std::vector<TimedMessage>& messages() const { return messages_; }

  /// Number of events that referenced no catalog message.
  std::size_t ignored_events() const { return ignored_; }

  void clear();

 private:
  struct Partial {
    std::uint64_t data = 0;
    std::uint32_t tag = 0;
    std::uint32_t session = 0;
    std::string dst;
  };

  const flow::MessageCatalog* catalog_;
  std::unordered_map<std::string, Partial> partial_;
  std::vector<TimedMessage> messages_;
  std::size_t ignored_ = 0;
};

/// Helper used by the simulator: the five signal events of one message beat.
std::vector<SignalEvent> signal_burst(const flow::Message& message,
                                      const TimedMessage& tm);

}  // namespace tracesel::soc
