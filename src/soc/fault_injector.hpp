#pragma once
// Capture-channel fault injection: the adversarial layer between the
// simulator's message stream and the trace buffer.
//
// The paper's operating reality is a lossy observation channel — a 32-bit
// buffer fed over noisy sideband wiring, with arbitration back-pressure and
// finite bandwidth. The seed pipeline assumed a perfect channel: every
// message arrives intact, in order, exactly once. FaultInjector restores
// the lossy reality in a controlled, seeded way so the downstream decode /
// localization / root-cause stages can be exercised (and benchmarked)
// against degraded captures. Fault kinds:
//
//   drop      — a message beat never reaches the buffer
//   corrupt   — bit flips in the content value, or a garbled sideband
//               field (session ordinal / routed-destination label)
//   duplicate — the channel re-delivers a beat (retry glitch)
//   reorder   — a beat is displaced forward by a bounded distance
//   truncate  — the remainder of a session's capture is lost (power event,
//               trigger misfire)
//   overflow  — per-session channel capacity; beats beyond it are dropped
//               by back-pressure
//
// Injection is deterministic given (profile.seed, input stream): reruns and
// CI sweeps are bit-reproducible. The golden (pre-silicon reference) run is
// never faulted — only the silicon-side capture is.

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "flow/message.hpp"
#include "soc/monitor.hpp"
#include "util/result.hpp"

namespace tracesel::soc {

enum class FaultKind : std::uint8_t {
  kDrop = 0,
  kCorrupt,
  kDuplicate,
  kReorder,
  kTruncate,
  kOverflow,
};

inline constexpr std::size_t kNumFaultKinds = 6;

std::string to_string(FaultKind kind);

/// Parses one fault kind name ("drop", "corrupt", ...).
util::Result<FaultKind> fault_kind_from_string(std::string_view name);

/// Parses a comma-separated kind list, e.g. "drop,corrupt,reorder".
util::Result<std::vector<FaultKind>> parse_fault_kinds(std::string_view csv);

/// All six kinds, in enum order.
std::vector<FaultKind> all_fault_kinds();

/// Configuration of the faulty channel.
struct FaultProfile {
  /// Per-message fault probability for each enabled kind (truncate is
  /// interpreted per session, see truncate_rate_scale).
  double rate = 0.0;
  /// Enabled kinds; empty with rate > 0 means "all kinds".
  std::vector<FaultKind> kinds;
  std::uint64_t seed = 1;
  /// Maximum forward displacement of a reordered beat.
  std::uint32_t reorder_window = 4;
  /// Truncation is a rare catastrophic event: its per-message probability
  /// is rate * this scale, and one firing discards the session's tail.
  double truncate_rate_scale = 0.05;
  /// Per-session channel capacity for kOverflow; 0 derives a capacity that
  /// back-pressures roughly the configured rate of the session's beats.
  std::size_t channel_capacity = 0;

  bool enabled() const { return rate > 0.0; }
  /// The effective kind set (kinds, or all kinds when empty).
  std::vector<FaultKind> effective_kinds() const;
};

/// Per-kind injection tally for one apply() pass.
struct FaultStats {
  std::array<std::size_t, kNumFaultKinds> injected{};  ///< by FaultKind
  std::size_t input_messages = 0;
  std::size_t delivered_messages = 0;

  std::size_t total_injected() const;
  /// Fraction of input beats touched by at least one fault event.
  double fault_fraction() const;
};

/// Wraps the simulator -> trace-buffer path. Stateless between apply()
/// calls except for the profile; each apply() forks a fresh RNG stream from
/// (profile.seed, salt) so retries with a new salt see fresh faults.
class FaultInjector {
 public:
  FaultInjector(const flow::MessageCatalog& catalog, FaultProfile profile);

  /// Pushes the stream through the faulty channel. `salt` decorrelates
  /// repeated captures of the same run (retry-with-fresh-seed).
  std::vector<TimedMessage> apply(const std::vector<TimedMessage>& input,
                                  std::uint64_t salt = 0,
                                  FaultStats* stats = nullptr) const;

  const FaultProfile& profile() const { return profile_; }

 private:
  const flow::MessageCatalog* catalog_;
  FaultProfile profile_;
  std::vector<std::string> ips_;  ///< distinct IP labels, for misdelivery
};

}  // namespace tracesel::soc
