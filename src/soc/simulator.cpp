#include "soc/simulator.hpp"

#include <map>
#include <stdexcept>

#include "util/bits.hpp"

namespace tracesel::soc {

namespace {

std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Per-instance execution state within one session.
struct InstanceState {
  const flow::Flow* flow = nullptr;
  std::uint32_t index = 0;
  flow::StateId state = 0;
  bool stalled = false;   ///< a drop bug killed a required message
  bool poisoned = false;  ///< wrong-decode: later content corrupted
  bool tainted = false;   ///< carried corrupted/misrouted traffic
  int stall_bug = -1;
  int poison_bug = -1;
  int taint_bug = -1;
};

}  // namespace

SocSimulator::SocSimulator(const T2Design& design, const Scenario& scenario)
    : catalog_(&design.catalog()),
      flows_(scenario_flows(design, scenario)),
      instances_per_flow_(scenario.instances_per_flow) {}

SocSimulator::SocSimulator(const flow::MessageCatalog& catalog,
                           std::vector<const flow::Flow*> flows,
                           std::uint32_t instances_per_flow)
    : catalog_(&catalog),
      flows_(std::move(flows)),
      instances_per_flow_(instances_per_flow) {
  if (flows_.empty())
    throw std::invalid_argument("SocSimulator: no flows");
  if (instances_per_flow_ == 0)
    throw std::invalid_argument("SocSimulator: zero instances per flow");
}

void SocSimulator::inject(bug::Bug bug) { bugs_.push_back(std::move(bug)); }

void SocSimulator::clear_bugs() { bugs_.clear(); }

std::uint64_t SocSimulator::golden_value(flow::MessageId m,
                                         std::uint32_t index,
                                         std::uint32_t session,
                                         std::uint32_t occurrence,
                                         std::uint32_t width) {
  const std::uint64_t key = (static_cast<std::uint64_t>(m) << 48) ^
                            (static_cast<std::uint64_t>(index) << 40) ^
                            (static_cast<std::uint64_t>(session) << 20) ^
                            occurrence;
  return mix(key) & util::max_value_for_width(width);
}

SimResult SocSimulator::run(const SimOptions& options) const {
  SimResult result;
  util::Rng rng(options.seed);
  Monitor monitor(*catalog_);
  std::uint64_t cycle = 0;

  for (std::uint32_t session = 0; session < options.sessions; ++session) {
    // Fresh flow instances each session, indexed 1..k per flow (Def. 4).
    std::vector<InstanceState> insts;
    for (const flow::Flow* f : flows_) {
      for (std::uint32_t i = 1; i <= instances_per_flow_; ++i) {
        InstanceState s;
        s.flow = f;
        s.index = i;
        s.state = f->initial_states().front();
        insts.push_back(s);
      }
    }
    // occurrence counters per (message, instance index) within the session.
    std::map<std::pair<flow::MessageId, std::uint32_t>, std::uint32_t> occ;

    for (std::uint32_t step = 0; step < options.max_steps_per_session;
         ++step) {
      // Def. 5 scheduling: if some instance occupies an atomic state, only
      // it may move; otherwise any unfinished instance may.
      std::size_t atomic_holder = insts.size();
      for (std::size_t i = 0; i < insts.size(); ++i) {
        if (!insts[i].stalled &&
            insts[i].flow->is_atomic(insts[i].state)) {
          atomic_holder = i;
          break;
        }
      }
      std::vector<std::size_t> enabled;
      for (std::size_t i = 0; i < insts.size(); ++i) {
        const InstanceState& s = insts[i];
        if (s.stalled || s.flow->is_stop(s.state)) continue;
        if (s.flow->outgoing(s.state).empty()) continue;
        if (atomic_holder != insts.size() && atomic_holder != i) continue;
        enabled.push_back(i);
      }
      if (enabled.empty()) break;  // session complete (or globally stalled)

      const std::size_t chosen_idx = enabled[rng.index(enabled.size())];
      InstanceState& inst = insts[chosen_idx];
      const auto& out = inst.flow->outgoing(inst.state);
      // Branch choice is a pure function of (seed, session, instance,
      // state), NOT of the shared scheduling stream: golden and buggy runs
      // then take identical per-instance paths (unless a bug stalls one),
      // which keeps the trace diff meaningful on branching flows.
      std::size_t branch = 0;
      if (out.size() > 1) {
        const std::uint64_t key =
            options.seed ^ (static_cast<std::uint64_t>(session) << 40) ^
            (static_cast<std::uint64_t>(chosen_idx) << 20) ^ inst.state;
        branch = static_cast<std::size_t>(mix(key) % out.size());
      }
      const flow::Transition& t = inst.flow->transitions()[out[branch]];
      const flow::Message& msg = catalog_->get(t.message);
      const std::uint32_t occurrence =
          occ[{t.message, inst.index}]++;

      TimedMessage tm;
      tm.msg = flow::IndexedMessage{t.message, inst.index};
      tm.value = golden_value(t.message, inst.index, session, occurrence,
                              msg.width);
      tm.src = msg.source_ip;
      tm.dst = msg.dest_ip;
      tm.session = session;

      // Bug effects on this emission. A corruption mask is always reduced
      // to the message width and forced nonzero so a "corrupting" effect
      // really changes the observable content.
      const auto effective_mask = [&](std::uint64_t mask) {
        mask &= util::max_value_for_width(msg.width);
        return mask ? mask : 1ull;
      };
      // Wrong-decode poisons everything the instance emits *after* the
      // mis-decoded message; remember the state before this emission.
      const bool was_poisoned = inst.poisoned;
      bool dropped = false;
      for (const bug::Bug& b : bugs_) {
        if (b.target != t.message) continue;
        if (session < b.trigger_session) continue;
        if (!rng.chance(b.trigger_probability)) continue;
        switch (b.effect) {
          case bug::BugEffect::kCorruptValue:
            tm.value ^= effective_mask(b.corrupt_mask);
            inst.tainted = true;
            inst.taint_bug = b.id;
            break;
          case bug::BugEffect::kDropMessage:
            dropped = true;
            inst.stalled = true;
            inst.stall_bug = b.id;
            break;
          case bug::BugEffect::kMisroute:
            tm.dst = b.misroute_dest.empty() ? tm.dst : b.misroute_dest;
            inst.tainted = true;
            inst.taint_bug = b.id;
            break;
          case bug::BugEffect::kWrongDecode:
            tm.value ^= effective_mask(b.corrupt_mask);
            inst.poisoned = true;
            inst.poison_bug = b.id;
            break;
        }
      }
      if (was_poisoned && !dropped) {
        // Receiver decoded an earlier message wrongly; everything it
        // produces afterwards in this flow instance is garbage.
        tm.value ^=
            effective_mask(mix(0xBADDECllu + inst.poison_bug));
      }

      cycle += rng.between(1, 16);  // variable message latency
      tm.cycle = cycle;

      if (!dropped) {
        for (const SignalEvent& ev : signal_burst(msg, tm)) {
          result.signals.push_back(ev);
          monitor.on_event(ev);
        }
      }

      inst.state = t.to;
    }

    // Session post-mortem: stalls are hangs, poisoned completions are bad
    // traps. Record only the first failure (the symptom the validator sees).
    if (!result.failed) {
      for (const InstanceState& s : insts) {
        if (s.stalled) {
          result.failed = true;
          result.fail_session = session;
          result.fail_cycle = cycle;
          result.failure = failure_text(s.stall_bug);
          break;
        }
        if (s.poisoned && s.flow->is_stop(s.state)) {
          result.failed = true;
          result.fail_session = session;
          result.fail_cycle = cycle;
          result.failure = failure_text(s.poison_bug);
          break;
        }
        if (s.tainted && s.flow->is_stop(s.state)) {
          // The garbage content reached its consumer; the test detects the
          // wrong architectural outcome at the end of the session.
          result.failed = true;
          result.fail_session = session;
          result.fail_cycle = cycle;
          result.failure = failure_text(s.taint_bug);
          break;
        }
        if (!s.flow->is_stop(s.state)) {
          result.failed = true;
          result.fail_session = session;
          result.fail_cycle = cycle;
          result.failure = "HANG: scenario deadlock";
          break;
        }
      }
      if (result.failed)
        result.messages_to_symptom = monitor.messages().size();
    }

    cycle += rng.between(20, 60);  // inter-session quiescence
  }

  result.messages = monitor.messages();
  result.total_cycles = cycle;
  return result;
}

std::string SocSimulator::failure_text(int bug_id) const {
  for (const bug::Bug& b : bugs_) {
    if (b.id == bug_id && !b.symptom.empty()) return b.symptom;
  }
  return "FAIL: Bad Trap";
}

}  // namespace tracesel::soc
