#pragma once
// The debug workbench: the full selection -> simulation -> capture ->
// observation -> localization -> root-cause-pruning pipeline for *any*
// design expressed as a message catalog, a flow set, and a root-cause
// catalog. The T2 case studies (case_study.hpp) are thin wrappers over
// this; downstream users run their own SoCs (e.g. flows parsed from a
// .flow spec) through the same machinery.
//
// The capture channel may be faulty (WorkbenchConfig::faults): the buggy
// silicon's message stream then passes through a FaultInjector before the
// trace buffer, and the downstream stages degrade gracefully — hardened
// decode with per-message evidence, recapture retries with fresh fault
// seeds when a capture is unusable, confidence-weighted localization and
// root-cause ranking — instead of crashing or silently asserting a unique
// answer. The golden (pre-silicon reference) run is never faulted.

#include <cstdint>
#include <vector>

#include "debug/debugger.hpp"
#include "debug/observation.hpp"
#include "debug/root_cause.hpp"
#include "selection/localization.hpp"
#include "selection/selector.hpp"
#include "soc/fault_injector.hpp"
#include "soc/simulator.hpp"
#include "soc/trace_buffer.hpp"
#include "util/backoff.hpp"

namespace tracesel::debug {

struct WorkbenchConfig {
  std::uint32_t buffer_width = 32;
  bool packing = true;
  /// Worker threads for the selection step (SelectorConfig::jobs
  /// semantics); selection output is identical for every value.
  std::size_t jobs = 1;
  std::uint32_t instances_per_flow = 2;
  std::uint32_t sessions = 4;
  std::uint64_t seed = 2018;
  std::size_t buffer_depth = 1u << 16;

  /// Capture-channel fault model; disabled (rate 0) reproduces the exact
  /// perfect-channel pipeline.
  soc::FaultProfile faults;
  /// Recapture attempts (fresh fault salt each time) when the decode
  /// reports an unusable capture.
  std::uint32_t capture_retries = 2;
  /// Delay schedule between recaptures (a re-run on silicon is not free:
  /// back off before re-arming the trigger). Exponential with seeded
  /// jitter; the stream is salted with WorkbenchConfig::seed so the same
  /// run replays the same delays. Defaults are sized for tests — real
  /// silicon would raise initial/cap by orders of magnitude.
  util::BackoffPolicy recapture_backoff{/*initial_ms=*/1, /*multiplier=*/2.0,
                                        /*cap_ms=*/50, /*jitter=*/0.25,
                                        /*seed=*/2018};
  /// Invalid-record fraction beyond which a capture is unusable.
  double unusable_threshold = 0.5;
  /// Minimum confidence-weighted agreement score for prune_weighted.
  double cause_score_threshold = 0.65;
};

struct WorkbenchResult {
  selection::SelectionResult selection;
  soc::SimResult golden;
  soc::SimResult buggy;
  std::vector<soc::TraceRecord> golden_records;
  std::vector<soc::TraceRecord> buggy_records;
  Observation observation;
  DebugReport report;
  selection::LocalizationResult localization;

  /// Capture-channel degradation telemetry (defaults = clean channel).
  soc::FaultStats fault_stats;
  std::size_t capture_attempts = 1;
  /// The backoff delay actually waited before each recapture, in order
  /// (empty when the first capture was usable). Deterministic per seed.
  std::vector<std::uint64_t> recapture_delays_ms;
  /// True when even the last recapture stayed unusable and the pipeline
  /// fell back to best-effort lenient decode.
  bool capture_degraded = false;
  /// Confidence-weighted verdict (always populated; on a clean channel the
  /// score-1.0 entries coincide with report.final_causes).
  std::vector<ScoredCause> ranked_causes;
  /// Localization with confidence weighting (clean channel: confidence 1).
  selection::RobustLocalizationResult robust_localization;
};

class Workbench {
 public:
  /// The catalog, flows and cause catalog must outlive the workbench.
  Workbench(const flow::MessageCatalog& catalog,
            std::vector<const flow::Flow*> flows,
            const RootCauseCatalog& causes);

  /// Runs the full pipeline with the given bugs injected into the buggy
  /// simulation (the golden run is bug-free, same seed). Deterministic.
  WorkbenchResult run(const std::vector<bug::Bug>& bugs,
                      const WorkbenchConfig& config = {}) const;

 private:
  const flow::MessageCatalog* catalog_;
  std::vector<const flow::Flow*> flows_;
  const RootCauseCatalog* causes_;
};

}  // namespace tracesel::debug
