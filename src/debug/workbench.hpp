#pragma once
// The debug workbench: the full selection -> simulation -> capture ->
// observation -> localization -> root-cause-pruning pipeline for *any*
// design expressed as a message catalog, a flow set, and a root-cause
// catalog. The T2 case studies (case_study.hpp) are thin wrappers over
// this; downstream users run their own SoCs (e.g. flows parsed from a
// .flow spec) through the same machinery.

#include <cstdint>
#include <vector>

#include "debug/debugger.hpp"
#include "debug/observation.hpp"
#include "debug/root_cause.hpp"
#include "selection/localization.hpp"
#include "selection/selector.hpp"
#include "soc/simulator.hpp"
#include "soc/trace_buffer.hpp"

namespace tracesel::debug {

struct WorkbenchConfig {
  std::uint32_t buffer_width = 32;
  bool packing = true;
  std::uint32_t instances_per_flow = 2;
  std::uint32_t sessions = 4;
  std::uint64_t seed = 2018;
  std::size_t buffer_depth = 1u << 16;
};

struct WorkbenchResult {
  selection::SelectionResult selection;
  soc::SimResult golden;
  soc::SimResult buggy;
  std::vector<soc::TraceRecord> golden_records;
  std::vector<soc::TraceRecord> buggy_records;
  Observation observation;
  DebugReport report;
  selection::LocalizationResult localization;
};

class Workbench {
 public:
  /// The catalog, flows and cause catalog must outlive the workbench.
  Workbench(const flow::MessageCatalog& catalog,
            std::vector<const flow::Flow*> flows,
            const RootCauseCatalog& causes);

  /// Runs the full pipeline with the given bugs injected into the buggy
  /// simulation (the golden run is bug-free, same seed). Deterministic.
  WorkbenchResult run(const std::vector<bug::Bug>& bugs,
                      const WorkbenchConfig& config = {}) const;

 private:
  const flow::MessageCatalog* catalog_;
  std::vector<const flow::Flow*> flows_;
  const RootCauseCatalog* causes_;
};

}  // namespace tracesel::debug
