#pragma once
// Deriving message-level observations from trace-buffer contents.
//
// During post-silicon debug the validator has two artifacts: the trace
// captured from the failing (buggy) silicon, and the expected behaviour
// (here: a golden run of the same test with the same seed). Diffing them
// per traced message yields a status that the root-cause pruning engine
// consumes (Sec. 5.6-5.7: "absence of trace messages mondoacknack and
// reqtot implies ...").

#include <map>
#include <vector>

#include "flow/message.hpp"
#include "soc/trace_buffer.hpp"

namespace tracesel::debug {

enum class MsgStatus {
  kPresentCorrect,  ///< observed with expected content and routing
  kPresentCorrupt,  ///< observed, but content differs from golden
  kAbsent,          ///< expected occurrences missing from the trace
  kMisrouted,       ///< observed at the wrong destination IP
};

std::string to_string(MsgStatus status);

/// Message-level view of a buggy trace relative to a golden trace.
struct Observation {
  /// Status per traced message id. Messages outside the traced set carry
  /// no information and are not listed.
  std::map<flow::MessageId, MsgStatus> status;
  /// The traced (observable) message ids, sorted.
  std::vector<flow::MessageId> traced;
};

/// Diffs buggy against golden trace records over the traced set.
/// Records are aligned per (message, instance index, session) in capture
/// order. A count shortfall is kAbsent; a value mismatch is
/// kPresentCorrupt; a destination mismatch is kMisrouted (checked first —
/// misrouted beats of correct content are still anomalies).
Observation observe(const flow::MessageCatalog& catalog,
                    const std::vector<flow::MessageId>& traced,
                    const std::vector<soc::TraceRecord>& golden,
                    const std::vector<soc::TraceRecord>& buggy);

}  // namespace tracesel::debug
