#pragma once
// Deriving message-level observations from trace-buffer contents.
//
// During post-silicon debug the validator has two artifacts: the trace
// captured from the failing (buggy) silicon, and the expected behaviour
// (here: a golden run of the same test with the same seed). Diffing them
// per traced message yields a status that the root-cause pruning engine
// consumes (Sec. 5.6-5.7: "absence of trace messages mondoacknack and
// reqtot implies ...").
//
// Two decode entry points:
//  - observe(): the original perfect-channel diff, kept for clean captures.
//  - observe_checked(): the hardened decode for real (lossy) captures. It
//    screens every record for structural validity (garbled session ordinal,
//    destination label outside the design's IP set), attaches per-message
//    evidence with a confidence weight, and returns a structured error
//    instead of lying when the capture is too damaged to support any
//    conclusion. observe_lenient() is the same decode with the error
//    downgraded to a low-quality observation (the "we must say something"
//    path after recapture retries are exhausted).

#include <cstdint>
#include <map>
#include <vector>

#include "flow/message.hpp"
#include "soc/trace_buffer.hpp"
#include "util/result.hpp"

namespace tracesel::debug {

enum class MsgStatus {
  kPresentCorrect,  ///< observed with expected content and routing
  kPresentCorrupt,  ///< observed, but content differs from golden
  kAbsent,          ///< expected occurrences missing from the trace
  kMisrouted,       ///< observed at the wrong destination IP
  kUnknown,         ///< evidence too damaged to classify (degraded capture)
};

std::string to_string(MsgStatus status);

/// Per-message decode evidence under a possibly-degraded capture.
struct MessageEvidence {
  MsgStatus status = MsgStatus::kUnknown;
  /// How much to trust `status`, in [0,1]. 1 = clean bilateral evidence;
  /// lowered by invalid records, count mismatches and missing references.
  double confidence = 0.0;
  std::size_t golden_count = 0;   ///< reference occurrences
  std::size_t buggy_count = 0;    ///< structurally valid captured records
  std::size_t invalid_records = 0;  ///< records rejected by validity checks
};

/// Message-level view of a buggy trace relative to a golden trace.
struct Observation {
  /// Status per traced message id. Messages outside the traced set carry
  /// no information and are not listed.
  std::map<flow::MessageId, MsgStatus> status;
  /// The traced (observable) message ids, sorted.
  std::vector<flow::MessageId> traced;

  /// Per-message evidence; populated by observe_checked()/observe_lenient()
  /// (empty after plain observe(), which assumes a perfect channel).
  std::map<flow::MessageId, MessageEvidence> evidence;
  std::size_t valid_records = 0;    ///< buggy records that passed validity
  std::size_t invalid_records = 0;  ///< buggy records rejected as garbled

  /// Structural capture quality: valid / (valid + invalid); 1.0 for a
  /// clean capture (or when no evidence screening ran).
  double quality() const {
    const std::size_t total = valid_records + invalid_records;
    return total == 0 ? 1.0
                      : static_cast<double>(valid_records) /
                            static_cast<double>(total);
  }

  /// Confidence of one message's evidence; 1.0 when screening did not run
  /// (perfect-channel decode), so legacy callers see full confidence.
  double confidence(flow::MessageId m) const {
    const auto it = evidence.find(m);
    return it == evidence.end() ? 1.0 : it->second.confidence;
  }
};

/// Diffs buggy against golden trace records over the traced set.
/// Records are aligned per (message, instance index, session) in capture
/// order. A count shortfall is kAbsent; a value mismatch is
/// kPresentCorrupt; a destination mismatch is kMisrouted (checked first —
/// misrouted beats of correct content are still anomalies).
Observation observe(const flow::MessageCatalog& catalog,
                    const std::vector<flow::MessageId>& traced,
                    const std::vector<soc::TraceRecord>& golden,
                    const std::vector<soc::TraceRecord>& buggy);

struct ObserveOptions {
  /// Error out (kUnusableCapture) when more than this fraction of the
  /// buggy records fail structural validity.
  double unusable_threshold = 0.5;
};

/// Hardened decode: screens buggy records for structural validity, then
/// diffs the valid subset and attaches per-message evidence/confidence.
/// Errors with kUnusableCapture when the invalid fraction exceeds
/// options.unusable_threshold (callers typically retry with a fresh
/// capture), never throws on damaged data.
util::Result<Observation> observe_checked(
    const flow::MessageCatalog& catalog,
    const std::vector<flow::MessageId>& traced,
    const std::vector<soc::TraceRecord>& golden,
    const std::vector<soc::TraceRecord>& buggy,
    const ObserveOptions& options = {});

/// Same decode, but an unusable capture degrades to a best-effort
/// observation (statuses kUnknown where evidence is gone) instead of an
/// error. Used once recapture retries are exhausted.
Observation observe_lenient(const flow::MessageCatalog& catalog,
                            const std::vector<flow::MessageId>& traced,
                            const std::vector<soc::TraceRecord>& golden,
                            const std::vector<soc::TraceRecord>& buggy);

}  // namespace tracesel::debug
