#pragma once
// Root-cause catalog for the extended (branching) scenario: the MonNack
// and PiorRetry flows of T2ExtendedDesign. Exercises pruning over branch
// evidence — e.g. "the NACK was observed but the retry never followed"
// is only expressible when flows have alternative outcomes.

#include "debug/root_cause.hpp"
#include "soc/t2_extended.hpp"

namespace tracesel::debug {

/// Seven potential causes for failures of MonNack ||| PiorRetry.
RootCauseCatalog extended_root_causes(const soc::T2ExtendedDesign& design);

}  // namespace tracesel::debug
