#pragma once
// End-to-end case-study driver: selection -> simulation (golden + buggy)
// -> trace capture -> observation -> localization -> root-cause pruning.
// Benches for Tables 3, 6, 7 and Figs. 6, 7 run through this driver.

#include <cstdint>

#include "debug/debugger.hpp"
#include "debug/observation.hpp"
#include "debug/root_cause.hpp"
#include "selection/localization.hpp"
#include "selection/selector.hpp"
#include "soc/fault_injector.hpp"
#include "soc/simulator.hpp"
#include "soc/t2_bugs.hpp"
#include "soc/trace_buffer.hpp"

namespace tracesel::debug {

struct CaseStudyOptions {
  std::uint32_t buffer_width = 32;  ///< Table 3 assumes 32 bits
  bool packing = true;
  /// Worker threads for the selection step (SelectorConfig::jobs
  /// semantics: 1 serial, 0 = hardware threads). Results are identical
  /// for every value.
  std::size_t jobs = 1;
  std::uint32_t sessions = 4;   ///< test repetitions per run
  std::uint64_t seed = 2018;
  std::size_t buffer_depth = 1u << 16;
  /// Session at which the active bug arms; > 0 models the long symptom
  /// latencies of Table 2 (golden-looking behaviour first).
  std::uint32_t active_trigger_session = 1;

  /// Capture-channel fault model (disabled by default = perfect channel).
  soc::FaultProfile faults;
  /// Recapture attempts with fresh fault seeds on an unusable capture.
  std::uint32_t capture_retries = 2;
  /// Invalid-record fraction beyond which a capture counts as unusable.
  double unusable_threshold = 0.5;
  /// Minimum agreement score for the confidence-weighted cause verdict.
  double cause_score_threshold = 0.65;
};

struct CaseStudyResult {
  soc::CaseStudy case_study;
  soc::Scenario scenario;
  selection::SelectionResult selection;
  soc::SimResult golden;
  soc::SimResult buggy;
  std::vector<soc::TraceRecord> golden_records;
  std::vector<soc::TraceRecord> buggy_records;
  Observation observation;
  DebugReport report;
  selection::LocalizationResult localization;

  /// Degradation telemetry, mirrored from WorkbenchResult (defaults =
  /// clean channel).
  soc::FaultStats fault_stats;
  std::size_t capture_attempts = 1;
  bool capture_degraded = false;
  /// Seeded-backoff delay waited before each recapture (see
  /// WorkbenchConfig::recapture_backoff).
  std::vector<std::uint64_t> recapture_delays_ms;
  std::vector<ScoredCause> ranked_causes;
  selection::RobustLocalizationResult robust_localization;
};

/// Runs one full case study. Deterministic given the options.
// deprecated: as an application entry point, prefer
// tracesel::Session::t2().run_case_study(...) (tracesel/tracesel.hpp);
// this free function remains the implementation the facade calls.
CaseStudyResult run_case_study(const soc::T2Design& design,
                               const soc::CaseStudy& case_study,
                               const CaseStudyOptions& options = {});

}  // namespace tracesel::debug
