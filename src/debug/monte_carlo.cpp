#include "debug/monte_carlo.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/stats.hpp"

namespace tracesel::debug {

namespace {

MetricStats stats_of(const std::vector<double>& xs) {
  MetricStats s;
  if (xs.empty()) return s;
  s.mean = util::mean(xs);
  s.stddev = util::stddev(xs);
  s.min = *std::min_element(xs.begin(), xs.end());
  s.max = *std::max_element(xs.begin(), xs.end());
  return s;
}

}  // namespace

MonteCarloResult evaluate_case_study(const soc::T2Design& design,
                                     const soc::CaseStudy& case_study,
                                     const CaseStudyOptions& base,
                                     std::size_t runs) {
  if (runs == 0)
    throw std::invalid_argument("evaluate_case_study: zero runs");

  MonteCarloResult result;
  result.runs = runs;
  std::vector<double> pruned, localization, messages, pairs;
  for (std::size_t i = 0; i < runs; ++i) {
    CaseStudyOptions opt = base;
    opt.seed = base.seed + i;
    const auto r = run_case_study(design, case_study, opt);
    if (r.buggy.failed) ++result.failures_detected;
    pruned.push_back(r.report.pruned_fraction());
    localization.push_back(r.localization.fraction);
    messages.push_back(
        static_cast<double>(r.report.messages_investigated));
    pairs.push_back(static_cast<double>(r.report.pairs_investigated));
  }
  result.pruned_fraction = stats_of(pruned);
  result.localization_fraction = stats_of(localization);
  result.messages_investigated = stats_of(messages);
  result.pairs_investigated = stats_of(pairs);
  return result;
}

}  // namespace tracesel::debug
