#include "debug/monte_carlo.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/obs.hpp"
#include "util/stats.hpp"

namespace tracesel::debug {

namespace {

MetricStats stats_of(const std::vector<double>& xs) {
  MetricStats s;
  if (xs.empty()) return s;
  s.mean = util::mean(xs);
  s.stddev = util::stddev(xs);
  s.min = *std::min_element(xs.begin(), xs.end());
  s.max = *std::max_element(xs.begin(), xs.end());
  return s;
}

}  // namespace

MonteCarloResult evaluate_case_study(const soc::T2Design& design,
                                     const soc::CaseStudy& case_study,
                                     const CaseStudyOptions& base,
                                     std::size_t runs, std::size_t jobs,
                                     util::ThreadPool* pool,
                                     const util::CancelToken* cancel) {
  if (runs == 0)
    throw std::invalid_argument("evaluate_case_study: zero runs");

  OBS_SPAN("debug.monte_carlo");
  MonteCarloResult result;
  result.requested_runs = runs;
  // Trials are embarrassingly parallel: each derives its seed from its
  // index and writes only its own slots, so the aggregation below sees the
  // same vectors (in the same order) as a serial run. Under cancellation
  // trials that did not run leave their done flag clear and are dropped
  // from the aggregation (a partial sample, never a torn one).
  std::vector<double> pruned(runs), localization(runs), messages(runs),
      pairs(runs);
  std::vector<unsigned char> failed(runs, 0);
  std::vector<unsigned char> done(runs, 0);
  const auto run_one = [&](std::size_t i) {
    if (cancel != nullptr && cancel->cancelled()) return;
    OBS_COUNT("debug.monte_carlo.trials", 1);
    CaseStudyOptions opt = base;
    opt.seed = base.seed + i;
    const auto r = run_case_study(design, case_study, opt);
    failed[i] = r.buggy.failed ? 1 : 0;
    pruned[i] = r.report.pruned_fraction();
    localization[i] = r.localization.fraction;
    messages[i] = static_cast<double>(r.report.messages_investigated);
    pairs[i] = static_cast<double>(r.report.pairs_investigated);
    done[i] = 1;
  };
  if (pool != nullptr) {
    pool->parallel_for(0, runs, run_one, 1, cancel);
  } else if (util::ThreadPool::resolve_jobs(jobs) == 1) {
    for (std::size_t i = 0; i < runs; ++i) run_one(i);
  } else {
    util::ThreadPool local(util::ThreadPool::resolve_jobs(jobs));
    local.parallel_for(0, runs, run_one, 1, cancel);
  }
  std::vector<double> cp, cl, cm, cq;
  for (std::size_t i = 0; i < runs; ++i) {
    if (!done[i]) continue;
    ++result.runs;
    if (failed[i]) ++result.failures_detected;
    cp.push_back(pruned[i]);
    cl.push_back(localization[i]);
    cm.push_back(messages[i]);
    cq.push_back(pairs[i]);
  }
  result.partial = result.runs < runs;
  if (result.partial) OBS_COUNT("resilience.cancelled_monte_carlo", 1);
  result.pruned_fraction = stats_of(cp);
  result.localization_fraction = stats_of(cl);
  result.messages_investigated = stats_of(cm);
  result.pairs_investigated = stats_of(cq);
  return result;
}

}  // namespace tracesel::debug
