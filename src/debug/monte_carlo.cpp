#include "debug/monte_carlo.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/obs.hpp"
#include "util/stats.hpp"

namespace tracesel::debug {

namespace {

MetricStats stats_of(const std::vector<double>& xs) {
  MetricStats s;
  if (xs.empty()) return s;
  s.mean = util::mean(xs);
  s.stddev = util::stddev(xs);
  s.min = *std::min_element(xs.begin(), xs.end());
  s.max = *std::max_element(xs.begin(), xs.end());
  return s;
}

}  // namespace

MonteCarloResult evaluate_case_study(const soc::T2Design& design,
                                     const soc::CaseStudy& case_study,
                                     const CaseStudyOptions& base,
                                     std::size_t runs, std::size_t jobs,
                                     util::ThreadPool* pool) {
  if (runs == 0)
    throw std::invalid_argument("evaluate_case_study: zero runs");

  OBS_SPAN("debug.monte_carlo");
  MonteCarloResult result;
  result.runs = runs;
  // Trials are embarrassingly parallel: each derives its seed from its
  // index and writes only its own slots, so the aggregation below sees the
  // same vectors (in the same order) as a serial run.
  std::vector<double> pruned(runs), localization(runs), messages(runs),
      pairs(runs);
  std::vector<unsigned char> failed(runs, 0);
  const auto run_one = [&](std::size_t i) {
    OBS_COUNT("debug.monte_carlo.trials", 1);
    CaseStudyOptions opt = base;
    opt.seed = base.seed + i;
    const auto r = run_case_study(design, case_study, opt);
    failed[i] = r.buggy.failed ? 1 : 0;
    pruned[i] = r.report.pruned_fraction();
    localization[i] = r.localization.fraction;
    messages[i] = static_cast<double>(r.report.messages_investigated);
    pairs[i] = static_cast<double>(r.report.pairs_investigated);
  };
  if (pool != nullptr) {
    pool->parallel_for(0, runs, run_one);
  } else if (util::ThreadPool::resolve_jobs(jobs) == 1) {
    for (std::size_t i = 0; i < runs; ++i) run_one(i);
  } else {
    util::ThreadPool local(util::ThreadPool::resolve_jobs(jobs));
    local.parallel_for(0, runs, run_one);
  }
  for (unsigned char f : failed)
    if (f) ++result.failures_detected;
  result.pruned_fraction = stats_of(pruned);
  result.localization_fraction = stats_of(localization);
  result.messages_investigated = stats_of(messages);
  result.pairs_investigated = stats_of(pairs);
  return result;
}

}  // namespace tracesel::debug
