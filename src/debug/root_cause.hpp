#pragma once
// Potential architectural root causes and the pruning engine (Sec. 5.6-5.7,
// Tables 1, 6, 7, Fig. 7).
//
// Each usage scenario carries a catalog of potential root causes (Table 1
// col. 8: 9 / 8 / 9). A cause predicts, for every message it would disturb,
// the status a trace would show if that cause were the real culprit
// (corrupt / absent / misrouted); messages it does not list are predicted
// healthy. Pruning keeps exactly the causes whose predictions agree with
// the observation over the *traced* messages — untraced messages carry no
// evidence, which is why message selection quality governs pruning power.

#include <map>
#include <string>
#include <vector>

#include "debug/ip_pairs.hpp"
#include "debug/observation.hpp"
#include "soc/t2_design.hpp"

namespace tracesel::debug {

struct RootCause {
  int id = 0;
  std::string description;  ///< Table 7 "Potential Causes"
  std::string implication;  ///< Table 7 "Potential implication"
  std::string ip;           ///< suspect IP block
  /// Predicted message statuses if this cause were real; unlisted messages
  /// are predicted kPresentCorrect.
  std::map<flow::MessageId, MsgStatus> predictions;

  /// Predicted status of one message under this cause.
  MsgStatus predicted(flow::MessageId m) const;

  /// The IP pairs this cause would disturb (pairs of predicted-unhealthy
  /// messages).
  std::vector<IpPair> suspect_pairs(const flow::MessageCatalog& catalog) const;
};

/// The root-cause catalog of one scenario.
class RootCauseCatalog {
 public:
  explicit RootCauseCatalog(std::vector<RootCause> causes);

  /// Catalog for the given usage scenario (Table 1 sizes: 9/8/9).
  static RootCauseCatalog for_scenario(const soc::T2Design& design,
                                       int scenario_id);

  const std::vector<RootCause>& causes() const { return causes_; }
  std::size_t size() const { return causes_.size(); }
  const RootCause& by_id(int id) const;

 private:
  std::vector<RootCause> causes_;
};

/// A cause is consistent with the observation iff its prediction matches
/// the observed status of every *traced* message. Messages whose status is
/// kUnknown (damaged evidence) carry no signal and are skipped.
bool consistent(const RootCause& cause, const Observation& obs);

/// The causes of `catalog` that survive the observation.
std::vector<const RootCause*> prune(const RootCauseCatalog& catalog,
                                    const Observation& obs);

/// A cause with its confidence-weighted agreement score. Held by value so
/// reports outlive the catalog they were computed from.
struct ScoredCause {
  RootCause cause;
  /// 1 - (confidence mass of mismatched messages / total confidence mass),
  /// in [0,1]. 1.0 = fully consistent with every trustworthy observation.
  double score = 1.0;
  std::size_t mismatches = 0;
};

/// Confidence-weighted consistency over a (possibly degraded) observation:
/// each traced message contributes its evidence confidence as weight, so a
/// mismatch on garbled evidence barely dents a cause while a mismatch on
/// clean evidence sinks it. Returns all causes, best score first. With a
/// clean capture (all confidences 1) a score of 1.0 coincides with
/// consistent().
std::vector<ScoredCause> rank(const RootCauseCatalog& catalog,
                              const Observation& obs);

/// The causes scoring at least `min_score`. Never returns an empty set for
/// a nonempty catalog: if degraded evidence eliminates everything, the
/// top-scoring tier is returned (with its telltale low score) instead of a
/// silently-wrong empty verdict.
std::vector<ScoredCause> prune_weighted(const RootCauseCatalog& catalog,
                                        const Observation& obs,
                                        double min_score = 0.65);

}  // namespace tracesel::debug
