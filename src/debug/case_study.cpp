#include "debug/case_study.hpp"

#include "debug/workbench.hpp"
#include "util/obs.hpp"

namespace tracesel::debug {

CaseStudyResult run_case_study(const soc::T2Design& design,
                               const soc::CaseStudy& case_study,
                               const CaseStudyOptions& options) {
  OBS_SPAN("debug.case_study");
  CaseStudyResult result;
  result.case_study = case_study;
  result.scenario = soc::scenario_by_id(case_study.scenario_id);

  // Assemble the injected-bug set: the active bug armed at the configured
  // session, dormant bugs armed beyond the run horizon.
  std::vector<bug::Bug> bugs;
  {
    // Bug ids resolve against the paper's 14-bug set first, then the DMA
    // extension bugs (ids 41+).
    const auto resolve = [&](int id) {
      try {
        return soc::bug_by_id(design, id);
      } catch (const std::out_of_range&) {
        return soc::extension_bug_by_id(design, id);
      }
    };
    bug::Bug active = resolve(case_study.active_bug_id);
    active.trigger_session = options.active_trigger_session;
    bugs.push_back(std::move(active));
    for (int id : case_study.dormant_bug_ids) {
      bug::Bug dormant = resolve(id);
      dormant.trigger_session = options.sessions + 1000;  // never fires
      bugs.push_back(std::move(dormant));
    }
  }

  const RootCauseCatalog catalog =
      RootCauseCatalog::for_scenario(design, case_study.scenario_id);
  const Workbench workbench(design.catalog(),
                            soc::scenario_flows(design, result.scenario),
                            catalog);
  WorkbenchConfig config;
  config.buffer_width = options.buffer_width;
  config.packing = options.packing;
  config.jobs = options.jobs;
  config.instances_per_flow = result.scenario.instances_per_flow;
  config.sessions = options.sessions;
  config.seed = options.seed;
  config.buffer_depth = options.buffer_depth;
  config.faults = options.faults;
  config.capture_retries = options.capture_retries;
  config.unusable_threshold = options.unusable_threshold;
  config.cause_score_threshold = options.cause_score_threshold;
  WorkbenchResult r = workbench.run(bugs, config);

  result.selection = std::move(r.selection);
  result.golden = std::move(r.golden);
  result.buggy = std::move(r.buggy);
  result.golden_records = std::move(r.golden_records);
  result.buggy_records = std::move(r.buggy_records);
  result.observation = std::move(r.observation);
  result.report = std::move(r.report);
  result.localization = r.localization;
  result.fault_stats = r.fault_stats;
  result.capture_attempts = r.capture_attempts;
  result.capture_degraded = r.capture_degraded;
  result.recapture_delays_ms = std::move(r.recapture_delays_ms);
  result.ranked_causes = std::move(r.ranked_causes);
  result.robust_localization = r.robust_localization;
  return result;
}

}  // namespace tracesel::debug
