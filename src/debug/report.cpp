#include "debug/report.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

namespace tracesel::debug {

namespace {

std::string pct(double fraction) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2) << fraction * 100.0 << '%';
  return os.str();
}

}  // namespace

std::string markdown_report(const soc::T2Design& design,
                            const CaseStudyResult& result) {
  const auto& catalog = design.catalog();
  std::ostringstream md;

  md << "# Post-silicon debug report — case study "
     << result.case_study.id << "\n\n";
  md << "**Usage scenario:** " << result.scenario.name << " (flows:";
  for (const auto& f : result.scenario.flow_names) md << ' ' << f;
  md << ")\n\n";
  md << "**Symptom:** "
     << (result.buggy.failed ? result.buggy.failure
                             : std::string("none observed"))
     << " in session " << result.buggy.fail_session << " after "
     << result.buggy.messages_to_symptom << " observed messages ("
     << result.buggy.fail_cycle << " cycles)\n\n";

  md << "## Trace buffer configuration\n\n"
     << "| Field | Width (bits) | Kind |\n|---|---|---|\n";
  for (const auto m : result.selection.combination.messages) {
    md << "| `" << catalog.get(m).name << "` | "
       << catalog.get(m).trace_width() << " | message |\n";
  }
  for (const auto& pg : result.selection.packed) {
    md << "| `" << catalog.get(pg.parent).name << '.' << pg.subgroup_name
       << "` | " << pg.width << " | packed subgroup |\n";
  }
  md << "\nUtilization: " << pct(result.selection.utilization()) << " ("
     << result.selection.used_width << '/' << result.selection.buffer_width
     << " bits), flow-spec coverage " << pct(result.selection.coverage)
     << ", information gain " << std::fixed << std::setprecision(3)
     << result.selection.gain << "\n\n";

  md << "## Observation (buggy trace vs golden)\n\n"
     << "| Message | Status |\n|---|---|\n";
  for (const auto& [m, status] : result.observation.status) {
    md << "| `" << catalog.get(m).name << "` | " << to_string(status)
       << " |\n";
  }

  md << "\n## Investigation log\n\n"
     << "| Step | Message | IP pair | Found | Plausible causes | Candidate "
        "pairs |\n|---|---|---|---|---|---|\n";
  int step = 1;
  for (const auto& st : result.report.steps) {
    md << "| " << step++ << " | `" << catalog.get(st.investigated).name
       << "` | " << st.pair.src << "→" << st.pair.dst << " | "
       << to_string(st.found) << " | " << st.plausible_causes << " | "
       << st.candidate_pairs << " |\n";
  }

  md << "\n## Root cause analysis\n\n"
     << "Pruned " << result.report.catalog_size -
                         result.report.final_causes.size()
     << " of " << result.report.catalog_size << " potential causes ("
     << pct(result.report.pruned_fraction()) << ").\n\n";
  for (const auto& c : result.report.final_causes) {
    md << "- **[" << c.ip << "]** " << c.description << "\n  - implication: "
       << c.implication << '\n';
  }

  md << "\n## Path localization\n\n"
     << "The failing session's trace is consistent with "
     << result.localization.consistent_paths << " of "
     << result.localization.total_paths << " interleaved executions ("
     << std::scientific << std::setprecision(2)
     << result.localization.fraction * 100.0 << "%).\n";

  return md.str();
}

void write_report(const soc::T2Design& design, const CaseStudyResult& result,
                  const std::string& path) {
  std::ofstream out(path);
  if (!out)
    throw std::runtime_error("write_report: cannot open '" + path + "'");
  out << markdown_report(design, result);
  if (!out)
    throw std::runtime_error("write_report: write failed for '" + path +
                             "'");
}

}  // namespace tracesel::debug
