#include "debug/workbench.hpp"

#include <stdexcept>
#include <thread>
#include <utility>

#include "util/backoff.hpp"
#include "util/obs.hpp"

namespace tracesel::debug {

Workbench::Workbench(const flow::MessageCatalog& catalog,
                     std::vector<const flow::Flow*> flows,
                     const RootCauseCatalog& causes)
    : catalog_(&catalog), flows_(std::move(flows)), causes_(&causes) {
  if (flows_.empty()) throw std::invalid_argument("Workbench: no flows");
}

WorkbenchResult Workbench::run(const std::vector<bug::Bug>& bugs,
                               const WorkbenchConfig& config) const {
  OBS_SPAN("debug.workbench");
  WorkbenchResult result;

  // --- Message selection over the interleaving ---
  const auto u = flow::InterleavedFlow::build(
      flow::make_instances(flows_, config.instances_per_flow));
  const selection::MessageSelector selector(*catalog_, u);
  selection::SelectorConfig sel_cfg;
  sel_cfg.buffer_width = config.buffer_width;
  sel_cfg.packing = config.packing;
  sel_cfg.jobs = config.jobs;
  result.selection = selector.select(sel_cfg);

  // --- Trace buffers ---
  soc::TraceBufferConfig tb_cfg;
  tb_cfg.width = config.buffer_width;
  tb_cfg.depth = config.buffer_depth;
  soc::TraceBuffer golden_buffer(tb_cfg);
  soc::TraceBuffer buggy_buffer(tb_cfg);
  golden_buffer.configure(*catalog_, result.selection);
  buggy_buffer.configure(*catalog_, result.selection);

  // --- Golden and buggy simulations with identical seeds ---
  soc::SocSimulator golden_sim(*catalog_, flows_,
                               config.instances_per_flow);
  soc::SocSimulator buggy_sim(*catalog_, flows_, config.instances_per_flow);
  for (const bug::Bug& b : bugs) buggy_sim.inject(b);
  soc::SimOptions sim_opts;
  sim_opts.sessions = config.sessions;
  sim_opts.seed = config.seed;
  {
    OBS_SPAN("debug.simulate");
    result.golden = golden_sim.run(sim_opts);
    result.buggy = buggy_sim.run(sim_opts);
  }

  for (const soc::TimedMessage& tm : result.golden.messages)
    golden_buffer.record(tm);
  result.golden_records = golden_buffer.records();

  // --- Buggy-side capture through the (possibly faulty) channel ---
  const bool faulty = config.faults.enabled();
  const soc::FaultInjector injector(*catalog_, config.faults);
  const std::vector<flow::MessageId> traced = result.selection.observable();
  ObserveOptions obs_opts;
  obs_opts.unusable_threshold = config.unusable_threshold;

  // Recapture spacing: the shared util::Backoff schedule, stream-salted
  // with the run seed so repeated runs replay identical delays.
  util::Backoff recapture_backoff(config.recapture_backoff, config.seed);

  for (std::uint32_t attempt = 0;; ++attempt) {
    OBS_SPAN("debug.capture");
    result.capture_attempts = attempt + 1;
    OBS_COUNT("debug.capture.attempts", 1);
    if (attempt > 0) OBS_COUNT("debug.capture.retries", 1);
    buggy_buffer.configure(*catalog_, result.selection);  // reset the ring
    const std::vector<soc::TimedMessage> delivered =
        injector.apply(result.buggy.messages, attempt, &result.fault_stats);
    for (const soc::TimedMessage& tm : delivered) buggy_buffer.record(tm);
    result.buggy_records = buggy_buffer.records();

    if (!faulty) {
      // Perfect channel: the original exact decode.
      result.observation = observe(*catalog_, traced, result.golden_records,
                                   result.buggy_records);
      break;
    }
    util::Result<Observation> checked =
        observe_checked(*catalog_, traced, result.golden_records,
                        result.buggy_records, obs_opts);
    if (checked.ok()) {
      result.observation = std::move(checked).value();
      break;
    }
    if (attempt >= config.capture_retries) {
      // Every recapture stayed unusable: degrade to the lenient decode
      // rather than crash — statuses fall to kUnknown where evidence is
      // gone, and every consumer below weighs that accordingly.
      result.observation = observe_lenient(
          *catalog_, traced, result.golden_records, result.buggy_records);
      result.capture_degraded = true;
      OBS_COUNT("debug.capture.degraded", 1);
      break;
    }
    // Unusable: recapture with a fresh fault salt (a re-run on silicon).
    // Re-arming the trigger is not free — back off before the next pass.
    const auto delay = recapture_backoff.next();
    result.recapture_delays_ms.push_back(
        static_cast<std::uint64_t>(delay.count()));
    OBS_HIST("debug.recapture.backoff_ms",
             static_cast<double>(delay.count()));
    if (delay.count() > 0) std::this_thread::sleep_for(delay);
  }
  OBS_COUNT("debug.faults.injected", result.fault_stats.total_injected());

  // --- Root-cause pruning: exact walk plus the weighted verdict ---
  {
    OBS_SPAN("debug.root_cause");
    const Debugger debugger(*catalog_, flows_, *causes_);
    result.report =
        debugger.debug(result.observation, result.buggy_records, config.seed);
    result.ranked_causes = prune_weighted(*causes_, result.observation,
                                          config.cause_score_threshold);
  }

  // --- Path localization on the failing session's projection ---
  // Caveat: if the buffer wrapped (overwritten records), the surviving
  // projection is a suffix, not a prefix, and ordered prefix-consistency
  // may count zero paths; size buffer_depth generously (default 64k) or
  // use a TraceTrigger to spend depth on the failing region.
  OBS_SPAN("debug.localize");
  std::vector<flow::IndexedMessage> observed;
  for (const soc::TraceRecord& r : result.buggy_records) {
    if (r.session == result.buggy.fail_session) observed.push_back(r.msg);
  }
  if (!faulty) {
    result.localization =
        selection::localize(u, result.selection.observable(), observed);
    result.robust_localization.result = result.localization;
    result.robust_localization.observed_total = observed.size();
    result.robust_localization.observed_screened = observed.size();
    result.robust_localization.observed_used = observed.size();
  } else {
    const auto robust = selection::localize_robust(
        u, result.selection.observable(), observed);
    if (robust.ok()) {
      result.robust_localization = robust.value();
      result.localization = result.robust_localization.result;
    } else {
      // Structurally impossible localization (e.g. no executions): report
      // zero knowledge rather than throwing mid-pipeline.
      result.robust_localization = selection::RobustLocalizationResult{};
      result.robust_localization.confidence = 0.0;
      result.robust_localization.unusable = true;
      result.localization = result.robust_localization.result;
    }
  }
  return result;
}

}  // namespace tracesel::debug
