#include "debug/workbench.hpp"

#include <stdexcept>

namespace tracesel::debug {

Workbench::Workbench(const flow::MessageCatalog& catalog,
                     std::vector<const flow::Flow*> flows,
                     const RootCauseCatalog& causes)
    : catalog_(&catalog), flows_(std::move(flows)), causes_(&causes) {
  if (flows_.empty()) throw std::invalid_argument("Workbench: no flows");
}

WorkbenchResult Workbench::run(const std::vector<bug::Bug>& bugs,
                               const WorkbenchConfig& config) const {
  WorkbenchResult result;

  // --- Message selection over the interleaving ---
  const auto u = flow::InterleavedFlow::build(
      flow::make_instances(flows_, config.instances_per_flow));
  const selection::MessageSelector selector(*catalog_, u);
  selection::SelectorConfig sel_cfg;
  sel_cfg.buffer_width = config.buffer_width;
  sel_cfg.packing = config.packing;
  result.selection = selector.select(sel_cfg);

  // --- Trace buffers ---
  soc::TraceBufferConfig tb_cfg;
  tb_cfg.width = config.buffer_width;
  tb_cfg.depth = config.buffer_depth;
  soc::TraceBuffer golden_buffer(tb_cfg);
  soc::TraceBuffer buggy_buffer(tb_cfg);
  golden_buffer.configure(*catalog_, result.selection);
  buggy_buffer.configure(*catalog_, result.selection);

  // --- Golden and buggy simulations with identical seeds ---
  soc::SocSimulator golden_sim(*catalog_, flows_,
                               config.instances_per_flow);
  soc::SocSimulator buggy_sim(*catalog_, flows_, config.instances_per_flow);
  for (const bug::Bug& b : bugs) buggy_sim.inject(b);
  soc::SimOptions sim_opts;
  sim_opts.sessions = config.sessions;
  sim_opts.seed = config.seed;
  result.golden = golden_sim.run(sim_opts);
  result.buggy = buggy_sim.run(sim_opts);

  for (const soc::TimedMessage& tm : result.golden.messages)
    golden_buffer.record(tm);
  for (const soc::TimedMessage& tm : result.buggy.messages)
    buggy_buffer.record(tm);
  result.golden_records = golden_buffer.records();
  result.buggy_records = buggy_buffer.records();

  // --- Observation and root-cause pruning ---
  result.observation = observe(*catalog_, result.selection.observable(),
                               result.golden_records, result.buggy_records);
  const Debugger debugger(*catalog_, flows_, *causes_);
  result.report =
      debugger.debug(result.observation, result.buggy_records, config.seed);

  // --- Path localization on the failing session's projection ---
  // Caveat: if the buffer wrapped (overwritten records), the surviving
  // projection is a suffix, not a prefix, and ordered prefix-consistency
  // may count zero paths; size buffer_depth generously (default 64k) or
  // use a TraceTrigger to spend depth on the failing region.
  std::vector<flow::IndexedMessage> observed;
  for (const soc::TraceRecord& r : result.buggy_records) {
    if (r.session == result.buggy.fail_session) observed.push_back(r.msg);
  }
  result.localization =
      selection::localize(u, result.selection.observable(), observed);
  return result;
}

}  // namespace tracesel::debug
