#pragma once
// Human-readable debug session reports. A post-silicon lab hands findings
// to the design team as a written report; this renders a CaseStudyResult
// as Markdown (symptom, trace configuration, observation diff,
// investigation log, surviving root causes, localization statistics).

#include <string>

#include "debug/case_study.hpp"

namespace tracesel::debug {

/// Renders the full session as Markdown. Deterministic for a given result.
std::string markdown_report(const soc::T2Design& design,
                            const CaseStudyResult& result);

/// Writes the report to a file; throws std::runtime_error on I/O failure.
void write_report(const soc::T2Design& design, const CaseStudyResult& result,
                  const std::string& path);

}  // namespace tracesel::debug
