#pragma once
// JSON serialization of selection and debugging artifacts — the interchange
// layer for CI dashboards and notebooks (the CLI's --json output).

#include "debug/workbench.hpp"
#include "selection/multi_scenario.hpp"
#include "selection/selector.hpp"
#include "util/json.hpp"

namespace tracesel::selection {

/// {"messages": [...], "packed": [...], "gain":, "coverage":, ...}
util::Json to_json(const flow::MessageCatalog& catalog,
                   const SelectionResult& result);

/// Adds per-scenario coverage and the weighted gain.
util::Json to_json(const flow::MessageCatalog& catalog,
                   const MultiScenarioResult& result);

}  // namespace tracesel::selection

namespace tracesel::debug {

/// Full workbench outcome: selection, symptom, observation statuses,
/// investigation steps, surviving causes, localization.
util::Json to_json(const flow::MessageCatalog& catalog,
                   const WorkbenchResult& result);

}  // namespace tracesel::debug
