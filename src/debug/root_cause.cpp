#include "debug/root_cause.hpp"

#include <algorithm>
#include <stdexcept>

namespace tracesel::debug {

MsgStatus RootCause::predicted(flow::MessageId m) const {
  const auto it = predictions.find(m);
  return it == predictions.end() ? MsgStatus::kPresentCorrect : it->second;
}

std::vector<IpPair> RootCause::suspect_pairs(
    const flow::MessageCatalog& catalog) const {
  std::vector<IpPair> pairs;
  for (const auto& [m, status] : predictions) {
    if (status == MsgStatus::kPresentCorrect) continue;
    const IpPair p = pair_of(catalog, m);
    if (std::find(pairs.begin(), pairs.end(), p) == pairs.end())
      pairs.push_back(p);
  }
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

RootCauseCatalog::RootCauseCatalog(std::vector<RootCause> causes)
    : causes_(std::move(causes)) {
  if (causes_.empty())
    throw std::invalid_argument("RootCauseCatalog: empty catalog");
}

const RootCause& RootCauseCatalog::by_id(int id) const {
  for (const RootCause& c : causes_) {
    if (c.id == id) return c;
  }
  throw std::out_of_range("RootCauseCatalog: unknown cause id " +
                          std::to_string(id));
}

bool consistent(const RootCause& cause, const Observation& obs) {
  for (flow::MessageId m : obs.traced) {
    const auto it = obs.status.find(m);
    if (it == obs.status.end()) continue;
    // Damaged evidence carries no signal either way: it can neither
    // confirm nor eliminate a cause.
    if (it->second == MsgStatus::kUnknown) continue;
    if (cause.predicted(m) != it->second) return false;
  }
  return true;
}

std::vector<ScoredCause> rank(const RootCauseCatalog& catalog,
                              const Observation& obs) {
  std::vector<ScoredCause> scored;
  scored.reserve(catalog.size());
  for (const RootCause& c : catalog.causes()) {
    ScoredCause sc;
    sc.cause = c;
    double total_weight = 0.0;
    double mismatch_weight = 0.0;
    for (flow::MessageId m : obs.traced) {
      const auto it = obs.status.find(m);
      if (it == obs.status.end()) continue;
      if (it->second == MsgStatus::kUnknown) continue;
      const double w = obs.confidence(m);
      total_weight += w;
      if (c.predicted(m) != it->second) {
        mismatch_weight += w;
        ++sc.mismatches;
      }
    }
    // With no trustworthy evidence at all, no cause can be ruled out.
    sc.score =
        total_weight <= 0.0 ? 1.0 : 1.0 - mismatch_weight / total_weight;
    scored.push_back(std::move(sc));
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const ScoredCause& a, const ScoredCause& b) {
                     return a.score > b.score;
                   });
  return scored;
}

std::vector<ScoredCause> prune_weighted(const RootCauseCatalog& catalog,
                                        const Observation& obs,
                                        double min_score) {
  std::vector<ScoredCause> scored = rank(catalog, obs);
  std::vector<ScoredCause> kept;
  for (const ScoredCause& sc : scored) {
    if (sc.score >= min_score) kept.push_back(sc);
  }
  if (!kept.empty()) return kept;
  // Degraded evidence eliminated everything: report the least-implausible
  // causes (top score tier) rather than an empty — and silently wrong —
  // verdict. Their low score is the caller's signal to distrust them.
  const double best = scored.empty() ? 0.0 : scored.front().score;
  for (const ScoredCause& sc : scored) {
    if (sc.score >= best) kept.push_back(sc);
  }
  return kept;
}

std::vector<const RootCause*> prune(const RootCauseCatalog& catalog,
                                    const Observation& obs) {
  std::vector<const RootCause*> plausible;
  for (const RootCause& c : catalog.causes()) {
    if (consistent(c, obs)) plausible.push_back(&c);
  }
  return plausible;
}

namespace {

RootCause make(int id, std::string desc, std::string implication,
               std::string ip,
               std::map<flow::MessageId, MsgStatus> predictions) {
  RootCause c;
  c.id = id;
  c.description = std::move(desc);
  c.implication = std::move(implication);
  c.ip = std::move(ip);
  c.predictions = std::move(predictions);
  return c;
}

std::vector<RootCause> scenario1_causes(const soc::T2Design& d) {
  using S = MsgStatus;
  return {
      make(1,
           "Mondo request forwarded from DMU to SIU's bypass queue instead "
           "of ordered queue",
           "Mondo interrupt not serviced", "SIU",
           {{d.siincu, S::kAbsent}, {d.mondoacknack, S::kAbsent}}),
      make(2, "Invalid Mondo payload forwarded to NCU from DMU via SIU",
           "Interrupt assigned to wrong CPU ID and Thread ID", "DMU",
           {{d.dmusiidata, S::kPresentCorrupt},
            {d.siincu, S::kPresentCorrupt}}),
      make(3, "Non-generation of Mondo interrupt by DMU",
           "Computing thread fetches operand from wrong memory location",
           "DMU",
           {{d.dmusiidata, S::kAbsent},
            {d.siincu, S::kAbsent},
            {d.mondoacknack, S::kAbsent}}),
      make(4, "Wrong credit ID returned to NCU at end of PIO read",
           "NCU credit bookkeeping diverges; later PIO reads stall", "DMU",
           {{d.piordcrd, S::kPresentCorrupt}}),
      make(5, "Wrong credit ID returned to NCU at end of PIO write",
           "NCU credit bookkeeping diverges; later PIO writes stall", "DMU",
           {{d.piowcrd, S::kPresentCorrupt}}),
      make(6, "PIO read return payload corrupted inside DMU",
           "Computing thread loads a wrong operand value", "DMU",
           {{d.dmuncud, S::kPresentCorrupt}}),
      make(7, "PIO write payload corrupted by NCU address generation",
           "Device register written with garbage", "NCU",
           {{d.ncupiow, S::kPresentCorrupt}}),
      make(8, "PIO read request dropped inside DMU",
           "PIO read never completes; requester thread hangs", "DMU",
           {{d.dmurd, S::kAbsent},
            {d.siurtn, S::kAbsent},
            {d.dmuncud, S::kAbsent},
            {d.piordcrd, S::kAbsent}}),
      make(9, "Wrong interrupt decoding logic / corrupted interrupt handling "
           "table in NCU",
           "Interrupt acknowledged to the wrong source", "NCU",
           {{d.mondoacknack, S::kPresentCorrupt}}),
  };
}

std::vector<RootCause> scenario2_causes(const soc::T2Design& d) {
  using S = MsgStatus;
  return {
      make(1, "Malformed CPU request from Cache Crossbar to NCU",
           "NCU decodes a garbage downstream request", "CCX",
           {{d.ccxdreq, S::kPresentCorrupt}}),
      make(2, "NCU downstream acknowledge dropped",
           "CCX retries the downstream request forever", "NCU",
           {{d.ncudack, S::kAbsent}}),
      make(3, "Erroneous interrupt dequeue logic after interrupt is serviced",
           "Interrupt never retired; interrupt queue fills", "NCU",
           {{d.mondoacknack, S::kAbsent}}),
      make(4, "Invalid Mondo payload forwarded to NCU from DMU via SIU",
           "Interrupt assigned to wrong CPU ID and Thread ID", "DMU",
           {{d.dmusiidata, S::kPresentCorrupt},
            {d.siincu, S::kPresentCorrupt}}),
      make(5, "Non-generation of Mondo interrupt by DMU",
           "Computing thread fetches operand from wrong memory location",
           "DMU",
           {{d.dmusiidata, S::kAbsent},
            {d.siincu, S::kAbsent},
            {d.mondoacknack, S::kAbsent}}),
      make(6, "Grant encoding error in Cache Crossbar arbitration",
           "NCU upstream transfer granted to the wrong requester", "CCX",
           {{d.ccxgnt, S::kPresentCorrupt}}),
      make(7, "NCU upstream data corrupted by wrong address generation",
           "Core receives a wrong non-cacheable load value", "NCU",
           {{d.ncuupd, S::kPresentCorrupt}}),
      make(8, "Incorrect decoding of request packet from CPU buffer in NCU",
           "Wrong upstream request issued; grant and data follow garbage",
           "NCU",
           {{d.ncuupreq, S::kPresentCorrupt},
            {d.ccxgnt, S::kPresentCorrupt},
            {d.ncuupd, S::kPresentCorrupt}}),
  };
}

std::vector<RootCause> scenario3_causes(const soc::T2Design& d) {
  using S = MsgStatus;
  return {
      make(1, "Erroneous decoding logic of CPU requests in memory controller",
           "Grant and upstream data follow a misdecoded request", "MCU",
           {{d.ccxgnt, S::kPresentCorrupt}, {d.ncuupd, S::kPresentCorrupt}}),
      make(2, "Grant encoding error in Cache Crossbar arbitration",
           "NCU upstream transfer granted to the wrong requester", "CCX",
           {{d.ccxgnt, S::kPresentCorrupt}}),
      make(3, "Incorrect decoding of request packet from CPU buffer in NCU",
           "Wrong upstream request issued; grant and data follow garbage",
           "NCU",
           {{d.ncuupreq, S::kPresentCorrupt},
            {d.ccxgnt, S::kPresentCorrupt},
            {d.ncuupd, S::kPresentCorrupt}}),
      make(4, "Malformed CPU request from Cache Crossbar to NCU",
           "NCU decodes a garbage downstream request", "CCX",
           {{d.ccxdreq, S::kPresentCorrupt}}),
      make(5, "NCU downstream acknowledge dropped",
           "CCX retries the downstream request forever", "NCU",
           {{d.ncudack, S::kAbsent}}),
      make(6, "PIO read request dropped inside DMU",
           "PIO read never completes; requester thread hangs", "DMU",
           {{d.dmurd, S::kAbsent},
            {d.siurtn, S::kAbsent},
            {d.dmuncud, S::kAbsent},
            {d.piordcrd, S::kAbsent}}),
      make(7, "PIO read return payload corrupted inside DMU",
           "Computing thread loads a wrong operand value", "DMU",
           {{d.dmuncud, S::kPresentCorrupt}}),
      make(8, "PIO write payload corrupted by NCU address generation",
           "Device register written with garbage", "NCU",
           {{d.ncupiow, S::kPresentCorrupt}}),
      make(9, "Wrong credit ID returned to NCU after programmed IO",
           "NCU credit bookkeeping diverges; later PIO traffic stalls", "DMU",
           {{d.piordcrd, S::kPresentCorrupt}}),
  };
}

std::vector<RootCause> scenario4_causes(const soc::T2Design& d) {
  using S = MsgStatus;
  return {
      make(1, "DMA read completion lost in SIU ordering queue",
           "DMA read never retires; interrupt generation gated forever",
           "SIU", {{d.dmardone, S::kAbsent}}),
      make(2, "MCU returns corrupt DMA read data",
           "Device receives garbage DMA payload", "MCU",
           {{d.mcurdata, S::kPresentCorrupt}}),
      make(3, "DMA read request forwarded to the wrong MCU bank",
           "Read serviced from the wrong address range", "SIU",
           {{d.siumcurd, S::kPresentCorrupt}}),
      make(4, "DMA write acknowledge dropped by MCU",
           "DMU write credits leak; DMA writes stall", "MCU",
           {{d.dmawrack, S::kAbsent}}),
      make(5, "SIU corrupts the DMA write command toward MCU",
           "Memory written at the wrong address", "SIU",
           {{d.siumcuwr, S::kPresentCorrupt}}),
      make(6, "Non-generation of Mondo interrupt by DMU",
           "Interrupt path silent end to end", "DMU",
           {{d.dmusiidata, S::kAbsent},
            {d.siincu, S::kAbsent},
            {d.mondoacknack, S::kAbsent}}),
      make(7, "Invalid Mondo payload forwarded to NCU from DMU via SIU",
           "Interrupt assigned to wrong CPU ID and Thread ID", "DMU",
           {{d.dmusiidata, S::kPresentCorrupt},
            {d.siincu, S::kPresentCorrupt}}),
      make(8, "Wrong interrupt decoding logic in NCU",
           "Interrupt acknowledged to the wrong source", "NCU",
           {{d.mondoacknack, S::kPresentCorrupt}}),
  };
}

}  // namespace

RootCauseCatalog RootCauseCatalog::for_scenario(const soc::T2Design& design,
                                                int scenario_id) {
  switch (scenario_id) {
    case 1: return RootCauseCatalog(scenario1_causes(design));
    case 2: return RootCauseCatalog(scenario2_causes(design));
    case 3: return RootCauseCatalog(scenario3_causes(design));
    case 4: return RootCauseCatalog(scenario4_causes(design));
  }
  throw std::out_of_range("RootCauseCatalog: scenario id must be 1..4");
}

}  // namespace tracesel::debug
