#pragma once
// Legal IP pairs (Sec. 5.6): an IP pair <source, destination> is legal if a
// message passes between them in some participating flow. The number of
// legal pairs a debugger must investigate is Table 6's debugging-effort
// metric.

#include <compare>
#include <string>
#include <vector>

#include "flow/flow.hpp"
#include "flow/message.hpp"

namespace tracesel::debug {

struct IpPair {
  std::string src;
  std::string dst;

  friend auto operator<=>(const IpPair&, const IpPair&) = default;
};

/// The routed pair of one message.
IpPair pair_of(const flow::MessageCatalog& catalog, flow::MessageId m);

/// Distinct legal pairs across the given flows, sorted.
std::vector<IpPair> legal_ip_pairs(const flow::MessageCatalog& catalog,
                                   const std::vector<const flow::Flow*>& flows);

/// Messages of `flows` routed over `pair`.
std::vector<flow::MessageId> messages_over_pair(
    const flow::MessageCatalog& catalog,
    const std::vector<const flow::Flow*>& flows, const IpPair& pair);

}  // namespace tracesel::debug
