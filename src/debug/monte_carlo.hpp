#pragma once
// Monte-Carlo evaluation of the debugging pipeline: repeats a case study
// across seeds (different schedulings, latencies, investigation orders)
// and reports the distribution of the headline metrics. The paper gives
// single-run numbers; this harness shows how stable they are.

#include <cstddef>

#include "debug/case_study.hpp"
#include "util/thread_pool.hpp"

namespace tracesel::debug {

struct MetricStats {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

struct MonteCarloResult {
  std::size_t runs = 0;            ///< trials that actually completed
  std::size_t requested_runs = 0;  ///< trials asked for
  /// True when cancellation stopped the evaluation early: the statistics
  /// aggregate only the completed trials.
  bool partial = false;
  std::size_t failures_detected = 0;  ///< runs whose symptom manifested
  MetricStats pruned_fraction;
  MetricStats localization_fraction;
  MetricStats messages_investigated;
  MetricStats pairs_investigated;
};

// deprecated: as an application entry point, prefer
// tracesel::Session::t2().monte_carlo(case_id, runs, base) — the facade
// threads SelectorConfig::jobs and reuses the session worker pool.
/// Runs the case study `runs` times with seeds base.seed, base.seed+1, ...
/// and aggregates. Each trial derives its RNG stream purely from its trial
/// index, so the result is deterministic and identical for every `jobs`
/// value (1 = serial, 0 = one worker per hardware thread). Pass `pool` to
/// reuse a caller-owned pool (e.g. tracesel::Session's) instead of
/// spawning one for the call. A non-null `cancel` makes the evaluation
/// cooperative: remaining trials are skipped once it fires and the result
/// aggregates the completed trials only (partial = true).
MonteCarloResult evaluate_case_study(const soc::T2Design& design,
                                     const soc::CaseStudy& case_study,
                                     const CaseStudyOptions& base,
                                     std::size_t runs, std::size_t jobs = 1,
                                     util::ThreadPool* pool = nullptr,
                                     const util::CancelToken* cancel = nullptr);

}  // namespace tracesel::debug
