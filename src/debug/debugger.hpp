#pragma once
// The backtracking debug procedure of Sec. 5.6: starting from the traced
// message where the bug symptom is observed, investigate traced messages
// one at a time (pseudo-randomly, guided by the participating flows),
// pruning candidate root causes and candidate legal IP pairs after every
// step. Produces the elimination curves of Fig. 6 and the effort metrics
// of Table 6.

#include <cstdint>
#include <vector>

#include "debug/ip_pairs.hpp"
#include "debug/observation.hpp"
#include "debug/root_cause.hpp"
#include "soc/scenario.hpp"
#include "soc/trace_buffer.hpp"

namespace tracesel::debug {

/// One investigation step and the state of the search after it.
struct DebugStep {
  flow::MessageId investigated = flow::kInvalidMessage;
  IpPair pair;
  MsgStatus found = MsgStatus::kPresentCorrect;
  std::size_t records_examined = 0;  ///< cumulative trace records read
  std::size_t plausible_causes = 0;  ///< remaining after this step
  std::size_t candidate_pairs = 0;   ///< remaining suspect/unexplored pairs
};

struct DebugReport {
  std::vector<DebugStep> steps;
  /// Surviving causes, by value: the report outlives the catalog it was
  /// computed from.
  std::vector<RootCause> final_causes;
  std::size_t legal_pairs = 0;
  std::size_t pairs_investigated = 0;     ///< distinct pairs examined
  std::size_t messages_investigated = 0;  ///< total trace records examined
  std::size_t catalog_size = 0;

  /// Fraction of potential root causes eliminated (Fig. 7).
  double pruned_fraction() const {
    return catalog_size == 0
               ? 0.0
               : 1.0 - static_cast<double>(final_causes.size()) /
                           static_cast<double>(catalog_size);
  }
};

class Debugger {
 public:
  /// T2 convenience: debug a Table 1 usage scenario.
  Debugger(const soc::T2Design& design, const soc::Scenario& scenario,
           const RootCauseCatalog& catalog);

  /// General form: any message catalog and flow set.
  Debugger(const flow::MessageCatalog& messages,
           std::vector<const flow::Flow*> flows,
           const RootCauseCatalog& catalog);

  /// Runs the investigation. `observation` carries the per-message diff of
  /// the failing trace; `buggy_records` is the captured buffer content
  /// (used to count records examined per investigated message). The seed
  /// drives the pseudo-random part of the investigation order.
  DebugReport debug(const Observation& observation,
                    const std::vector<soc::TraceRecord>& buggy_records,
                    std::uint64_t seed) const;

 private:
  /// Investigation order: the symptom message first, then the rest of its
  /// flow backwards (backtracking), then remaining traced messages of other
  /// flows, shuffled with `seed`.
  std::vector<flow::MessageId> investigation_order(
      const Observation& observation, std::uint64_t seed) const;

  const flow::MessageCatalog* messages_;
  std::vector<const flow::Flow*> flows_;
  const RootCauseCatalog* catalog_;
};

}  // namespace tracesel::debug
