#include "debug/extended_causes.hpp"

namespace tracesel::debug {

RootCauseCatalog extended_root_causes(const soc::T2ExtendedDesign& d) {
  using S = MsgStatus;
  auto make = [](int id, std::string desc, std::string implication,
                 std::string ip,
                 std::map<flow::MessageId, MsgStatus> predictions) {
    RootCause c;
    c.id = id;
    c.description = std::move(desc);
    c.implication = std::move(implication);
    c.ip = std::move(ip);
    c.predictions = std::move(predictions);
    return c;
  };

  return RootCauseCatalog({
      make(1, "Retry request lost in DMU after interrupt NACK",
           "NACKed Mondo interrupt never requeued; interrupt dropped",
           "DMU", {{d.reqretry, S::kAbsent}}),
      make(2, "Wrong NACK decision in NCU interrupt handling table",
           "Valid interrupts bounced back to DMU",
           "NCU", {{d.mondonack, S::kPresentCorrupt}}),
      make(3, "Non-generation of Mondo interrupt by DMU",
           "Interrupt path silent end to end", "DMU",
           {{d.dmusiidata, S::kAbsent},
            {d.siincu, S::kAbsent},
            {d.mondoacknack, S::kAbsent},
            {d.mondonack, S::kAbsent},
            {d.reqretry, S::kAbsent}}),
      make(4, "Invalid Mondo payload forwarded to NCU from DMU via SIU",
           "Interrupt assigned to wrong CPU/thread", "DMU",
           {{d.dmusiidata, S::kPresentCorrupt},
            {d.siincu, S::kPresentCorrupt}}),
      make(5, "PIO credit-miss mishandled: retry never issued by NCU",
           "Missed PIO read silently abandoned", "NCU",
           {{d.pioretry, S::kAbsent}}),
      make(6, "PIO read return payload corrupted inside DMU",
           "Computing thread loads a wrong operand value", "DMU",
           {{d.dmuncud, S::kPresentCorrupt}}),
      make(7, "PIO request mis-addressed by NCU address generation",
           "Read hits the wrong device register", "NCU",
           {{d.ncupior, S::kPresentCorrupt}}),
  });
}

}  // namespace tracesel::debug
