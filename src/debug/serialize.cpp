#include "debug/serialize.hpp"

namespace tracesel::selection {

namespace {

util::Json message_names(const flow::MessageCatalog& catalog,
                         const std::vector<flow::MessageId>& ids) {
  util::Json arr = util::Json::array();
  for (const flow::MessageId m : ids)
    arr.push_back(util::Json::string(catalog.get(m).name));
  return arr;
}

util::Json packed_groups(const flow::MessageCatalog& catalog,
                         const std::vector<PackedGroup>& packed) {
  util::Json arr = util::Json::array();
  for (const PackedGroup& pg : packed) {
    util::Json obj = util::Json::object();
    obj.set("parent", util::Json::string(catalog.get(pg.parent).name));
    obj.set("subgroup", util::Json::string(pg.subgroup_name));
    obj.set("width", util::Json::number(std::uint64_t{pg.width}));
    arr.push_back(std::move(obj));
  }
  return arr;
}

}  // namespace

util::Json to_json(const flow::MessageCatalog& catalog,
                   const SelectionResult& result) {
  util::Json obj = util::Json::object();
  obj.set("messages", message_names(catalog, result.combination.messages));
  obj.set("packed", packed_groups(catalog, result.packed));
  obj.set("gain", util::Json::number(result.gain));
  obj.set("gain_unpacked", util::Json::number(result.gain_unpacked));
  obj.set("coverage", util::Json::number(result.coverage));
  obj.set("coverage_unpacked",
          util::Json::number(result.coverage_unpacked));
  obj.set("used_width", util::Json::number(std::uint64_t{result.used_width}));
  obj.set("buffer_width",
          util::Json::number(std::uint64_t{result.buffer_width}));
  obj.set("utilization", util::Json::number(result.utilization()));
  // Resilience fields are emitted unconditionally so a resumed run's JSON
  // diffs clean against an uninterrupted one (docs/resilience.md).
  obj.set("partial", util::Json::boolean(result.partial));
  obj.set("explored_fraction", util::Json::number(result.explored_fraction));
  obj.set("degradation", util::Json::string(result.degradation));
  return obj;
}

util::Json to_json(const flow::MessageCatalog& catalog,
                   const MultiScenarioResult& result) {
  util::Json obj = util::Json::object();
  obj.set("messages", message_names(catalog, result.combination.messages));
  obj.set("packed", packed_groups(catalog, result.packed));
  obj.set("weighted_gain", util::Json::number(result.weighted_gain));
  util::Json cov = util::Json::array();
  for (const double c : result.per_scenario_coverage)
    cov.push_back(util::Json::number(c));
  obj.set("per_scenario_coverage", std::move(cov));
  obj.set("used_width", util::Json::number(std::uint64_t{result.used_width}));
  obj.set("buffer_width",
          util::Json::number(std::uint64_t{result.buffer_width}));
  return obj;
}

}  // namespace tracesel::selection

namespace tracesel::debug {

util::Json to_json(const flow::MessageCatalog& catalog,
                   const WorkbenchResult& result) {
  util::Json obj = util::Json::object();
  obj.set("selection", selection::to_json(catalog, result.selection));

  util::Json symptom = util::Json::object();
  symptom.set("failed", util::Json::boolean(result.buggy.failed));
  symptom.set("failure", util::Json::string(result.buggy.failure));
  symptom.set("fail_session",
              util::Json::number(std::uint64_t{result.buggy.fail_session}));
  symptom.set("messages_to_symptom",
              util::Json::number(result.buggy.messages_to_symptom));
  obj.set("symptom", std::move(symptom));

  util::Json observation = util::Json::object();
  for (const auto& [m, status] : result.observation.status)
    observation.set(catalog.get(m).name,
                    util::Json::string(to_string(status)));
  obj.set("observation", std::move(observation));

  util::Json steps = util::Json::array();
  for (const auto& st : result.report.steps) {
    util::Json step = util::Json::object();
    step.set("message",
             util::Json::string(catalog.get(st.investigated).name));
    step.set("found", util::Json::string(to_string(st.found)));
    step.set("plausible_causes",
             util::Json::number(st.plausible_causes));
    step.set("candidate_pairs", util::Json::number(st.candidate_pairs));
    steps.push_back(std::move(step));
  }
  obj.set("investigation", std::move(steps));

  util::Json causes = util::Json::array();
  for (const auto& c : result.report.final_causes) {
    util::Json cause = util::Json::object();
    cause.set("id", util::Json::number(std::int64_t{c.id}));
    cause.set("ip", util::Json::string(c.ip));
    cause.set("description", util::Json::string(c.description));
    causes.push_back(std::move(cause));
  }
  obj.set("plausible_causes", std::move(causes));
  obj.set("pruned_fraction",
          util::Json::number(result.report.pruned_fraction()));

  util::Json localization = util::Json::object();
  localization.set("total_paths",
                   util::Json::number(result.localization.total_paths));
  localization.set("consistent_paths",
                   util::Json::number(result.localization.consistent_paths));
  localization.set("fraction",
                   util::Json::number(result.localization.fraction));
  localization.set(
      "confidence",
      util::Json::number(result.robust_localization.confidence));
  localization.set("degraded",
                   util::Json::boolean(result.robust_localization.degraded));
  obj.set("localization", std::move(localization));

  util::Json ranked = util::Json::array();
  for (const ScoredCause& sc : result.ranked_causes) {
    util::Json cause = util::Json::object();
    cause.set("id", util::Json::number(std::int64_t{sc.cause.id}));
    cause.set("ip", util::Json::string(sc.cause.ip));
    cause.set("score", util::Json::number(sc.score));
    cause.set("mismatches", util::Json::number(sc.mismatches));
    ranked.push_back(std::move(cause));
  }
  obj.set("ranked_causes", std::move(ranked));

  util::Json capture = util::Json::object();
  capture.set("quality", util::Json::number(result.observation.quality()));
  capture.set("valid_records",
              util::Json::number(result.observation.valid_records));
  capture.set("invalid_records",
              util::Json::number(result.observation.invalid_records));
  capture.set("attempts", util::Json::number(result.capture_attempts));
  capture.set("degraded", util::Json::boolean(result.capture_degraded));
  util::Json injected = util::Json::object();
  for (const soc::FaultKind k : soc::all_fault_kinds())
    injected.set(soc::to_string(k),
                 util::Json::number(result.fault_stats.injected
                                        [static_cast<std::size_t>(k)]));
  capture.set("injected_faults", std::move(injected));
  obj.set("capture", std::move(capture));
  return obj;
}

}  // namespace tracesel::debug
