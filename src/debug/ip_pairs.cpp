#include "debug/ip_pairs.hpp"

#include <algorithm>

namespace tracesel::debug {

IpPair pair_of(const flow::MessageCatalog& catalog, flow::MessageId m) {
  const flow::Message& msg = catalog.get(m);
  return IpPair{msg.source_ip, msg.dest_ip};
}

std::vector<IpPair> legal_ip_pairs(
    const flow::MessageCatalog& catalog,
    const std::vector<const flow::Flow*>& flows) {
  std::vector<IpPair> pairs;
  for (const flow::Flow* f : flows) {
    for (flow::MessageId m : f->messages()) {
      const IpPair p = pair_of(catalog, m);
      if (std::find(pairs.begin(), pairs.end(), p) == pairs.end())
        pairs.push_back(p);
    }
  }
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

std::vector<flow::MessageId> messages_over_pair(
    const flow::MessageCatalog& catalog,
    const std::vector<const flow::Flow*>& flows, const IpPair& pair) {
  std::vector<flow::MessageId> out;
  for (const flow::Flow* f : flows) {
    for (flow::MessageId m : f->messages()) {
      if (pair_of(catalog, m) == pair &&
          std::find(out.begin(), out.end(), m) == out.end())
        out.push_back(m);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace tracesel::debug
