#include "debug/observation.hpp"

#include <algorithm>
#include <map>
#include <tuple>
#include <unordered_set>

namespace tracesel::debug {

std::string to_string(MsgStatus status) {
  switch (status) {
    case MsgStatus::kPresentCorrect: return "present-correct";
    case MsgStatus::kPresentCorrupt: return "present-corrupt";
    case MsgStatus::kAbsent: return "absent";
    case MsgStatus::kMisrouted: return "misrouted";
    case MsgStatus::kUnknown: return "unknown";
  }
  return "?";
}

namespace {

using StreamKey = std::tuple<flow::MessageId, std::uint32_t, std::uint32_t>;

/// Groups records into per-(message, index, session) capture-order streams.
std::map<StreamKey, std::vector<const soc::TraceRecord*>> streams(
    const std::vector<soc::TraceRecord>& records) {
  std::map<StreamKey, std::vector<const soc::TraceRecord*>> out;
  for (const soc::TraceRecord& r : records)
    out[{r.msg.message, r.msg.index, r.session}].push_back(&r);
  return out;
}

/// Structural validity screen for one captured record. The reference for
/// "structurally possible" is the clean golden run: a session ordinal the
/// golden run never reached, a message id outside the catalog, or a routed
/// destination that is not an IP of the design can only be channel garbage.
struct ValidityContext {
  std::unordered_set<std::string> known_ips;
  std::uint32_t max_session = 0;
  std::size_t catalog_size = 0;
};

ValidityContext validity_context(const flow::MessageCatalog& catalog,
                                 const std::vector<soc::TraceRecord>& golden) {
  ValidityContext ctx;
  ctx.catalog_size = catalog.size();
  for (const flow::Message& m : catalog) {
    ctx.known_ips.insert(m.source_ip);
    ctx.known_ips.insert(m.dest_ip);
  }
  for (const soc::TraceRecord& r : golden)
    ctx.max_session = std::max(ctx.max_session, r.session);
  return ctx;
}

bool structurally_valid(const soc::TraceRecord& r, const ValidityContext& ctx) {
  if (r.msg.message >= ctx.catalog_size) return false;
  if (r.session > ctx.max_session) return false;
  if (!r.dst.empty() && !ctx.known_ips.contains(r.dst)) return false;
  return true;
}

/// The shared hardened decode behind observe_checked / observe_lenient.
Observation decode_screened(const flow::MessageCatalog& catalog,
                            const std::vector<flow::MessageId>& traced,
                            const std::vector<soc::TraceRecord>& golden,
                            const std::vector<soc::TraceRecord>& buggy) {
  const ValidityContext ctx = validity_context(catalog, golden);

  std::vector<soc::TraceRecord> valid;
  valid.reserve(buggy.size());
  std::map<flow::MessageId, std::size_t> invalid_per_message;
  std::size_t invalid_unattributed = 0;
  for (const soc::TraceRecord& r : buggy) {
    if (structurally_valid(r, ctx)) {
      valid.push_back(r);
    } else if (r.msg.message < ctx.catalog_size) {
      ++invalid_per_message[r.msg.message];
    } else {
      ++invalid_unattributed;
    }
  }

  Observation obs = observe(catalog, traced, golden, valid);
  obs.valid_records = valid.size();
  obs.invalid_records = buggy.size() - valid.size();

  // Per-message evidence and confidence.
  std::map<flow::MessageId, std::size_t> golden_count, buggy_count;
  for (const soc::TraceRecord& r : golden) ++golden_count[r.msg.message];
  for (const soc::TraceRecord& r : valid) ++buggy_count[r.msg.message];

  for (const flow::MessageId m : obs.traced) {
    MessageEvidence ev;
    ev.golden_count = golden_count[m];
    ev.buggy_count = buggy_count[m];
    ev.invalid_records = invalid_per_message.contains(m)
                             ? invalid_per_message[m]
                             : 0;
    ev.status = obs.status[m];

    if (ev.golden_count == 0) {
      // No reference occurrences: the diff can only say "nothing expected,
      // nothing decisive seen". Thin but not damaged evidence.
      ev.confidence = ev.invalid_records == 0 ? 0.5 : 0.25;
    } else if (ev.buggy_count == 0 && ev.invalid_records > 0) {
      // Every captured record of this message was garbage: we cannot tell
      // absent from present-but-garbled.
      ev.status = MsgStatus::kUnknown;
      ev.confidence = 0.0;
    } else {
      // Bilateral evidence. Confidence decays with the fraction of this
      // message's records lost to garbling and with count disagreement
      // beyond what the diff already classified.
      const double g = static_cast<double>(ev.golden_count);
      const double damage =
          static_cast<double>(ev.invalid_records) /
          (g + static_cast<double>(ev.invalid_records));
      const double surplus =
          ev.buggy_count > ev.golden_count
              ? static_cast<double>(ev.buggy_count - ev.golden_count) / g
              : 0.0;
      ev.confidence =
          std::clamp(1.0 - damage - 0.5 * std::min(1.0, surplus), 0.0, 1.0);
    }
    obs.status[m] = ev.status;
    obs.evidence[m] = ev;
  }
  // Garbage that could not be attributed to any message still erodes
  // overall quality via invalid_records (already counted above).
  (void)invalid_unattributed;
  return obs;
}

}  // namespace

Observation observe(const flow::MessageCatalog& catalog,
                    const std::vector<flow::MessageId>& traced,
                    const std::vector<soc::TraceRecord>& golden,
                    const std::vector<soc::TraceRecord>& buggy) {
  Observation obs;
  obs.traced = traced;
  std::sort(obs.traced.begin(), obs.traced.end());

  const auto gold = streams(golden);
  const auto bug = streams(buggy);

  for (flow::MessageId m : obs.traced) {
    MsgStatus status = MsgStatus::kPresentCorrect;
    auto worsen = [&](MsgStatus s) {
      // Severity order: misrouted/absent dominate corrupt dominates correct.
      if (status == MsgStatus::kPresentCorrect) status = s;
      else if (status == MsgStatus::kPresentCorrupt &&
               s != MsgStatus::kPresentCorrect)
        status = s;
    };

    for (const auto& [key, gseq] : gold) {
      if (std::get<0>(key) != m) continue;
      const auto it = bug.find(key);
      const std::size_t blen = it == bug.end() ? 0 : it->second.size();
      if (blen < gseq.size()) worsen(MsgStatus::kAbsent);
      const std::size_t n = std::min(blen, gseq.size());
      for (std::size_t i = 0; i < n; ++i) {
        const soc::TraceRecord& g = *gseq[i];
        const soc::TraceRecord& b = *it->second[i];
        if (b.dst != g.dst || b.dst != catalog.get(m).dest_ip)
          worsen(MsgStatus::kMisrouted);
        else if (b.value != g.value)
          worsen(MsgStatus::kPresentCorrupt);
      }
    }
    obs.status[m] = status;
  }
  return obs;
}

util::Result<Observation> observe_checked(
    const flow::MessageCatalog& catalog,
    const std::vector<flow::MessageId>& traced,
    const std::vector<soc::TraceRecord>& golden,
    const std::vector<soc::TraceRecord>& buggy,
    const ObserveOptions& options) {
  Observation obs = decode_screened(catalog, traced, golden, buggy);
  const double invalid_fraction = 1.0 - obs.quality();
  if (!buggy.empty() && invalid_fraction > options.unusable_threshold) {
    return util::Error{
        util::ErrorCode::kUnusableCapture,
        "capture unusable: " + std::to_string(obs.invalid_records) + "/" +
            std::to_string(obs.invalid_records + obs.valid_records) +
            " records failed structural validity"};
  }
  return obs;
}

Observation observe_lenient(const flow::MessageCatalog& catalog,
                            const std::vector<flow::MessageId>& traced,
                            const std::vector<soc::TraceRecord>& golden,
                            const std::vector<soc::TraceRecord>& buggy) {
  return decode_screened(catalog, traced, golden, buggy);
}

}  // namespace tracesel::debug
