#include "debug/observation.hpp"

#include <algorithm>
#include <map>
#include <tuple>

namespace tracesel::debug {

std::string to_string(MsgStatus status) {
  switch (status) {
    case MsgStatus::kPresentCorrect: return "present-correct";
    case MsgStatus::kPresentCorrupt: return "present-corrupt";
    case MsgStatus::kAbsent: return "absent";
    case MsgStatus::kMisrouted: return "misrouted";
  }
  return "?";
}

namespace {

using StreamKey = std::tuple<flow::MessageId, std::uint32_t, std::uint32_t>;

/// Groups records into per-(message, index, session) capture-order streams.
std::map<StreamKey, std::vector<const soc::TraceRecord*>> streams(
    const std::vector<soc::TraceRecord>& records) {
  std::map<StreamKey, std::vector<const soc::TraceRecord*>> out;
  for (const soc::TraceRecord& r : records)
    out[{r.msg.message, r.msg.index, r.session}].push_back(&r);
  return out;
}

}  // namespace

Observation observe(const flow::MessageCatalog& catalog,
                    const std::vector<flow::MessageId>& traced,
                    const std::vector<soc::TraceRecord>& golden,
                    const std::vector<soc::TraceRecord>& buggy) {
  Observation obs;
  obs.traced = traced;
  std::sort(obs.traced.begin(), obs.traced.end());

  const auto gold = streams(golden);
  const auto bug = streams(buggy);

  for (flow::MessageId m : obs.traced) {
    MsgStatus status = MsgStatus::kPresentCorrect;
    auto worsen = [&](MsgStatus s) {
      // Severity order: misrouted/absent dominate corrupt dominates correct.
      if (status == MsgStatus::kPresentCorrect) status = s;
      else if (status == MsgStatus::kPresentCorrupt &&
               s != MsgStatus::kPresentCorrect)
        status = s;
    };

    for (const auto& [key, gseq] : gold) {
      if (std::get<0>(key) != m) continue;
      const auto it = bug.find(key);
      const std::size_t blen = it == bug.end() ? 0 : it->second.size();
      if (blen < gseq.size()) worsen(MsgStatus::kAbsent);
      const std::size_t n = std::min(blen, gseq.size());
      for (std::size_t i = 0; i < n; ++i) {
        const soc::TraceRecord& g = *gseq[i];
        const soc::TraceRecord& b = *it->second[i];
        if (b.dst != g.dst || b.dst != catalog.get(m).dest_ip)
          worsen(MsgStatus::kMisrouted);
        else if (b.value != g.value)
          worsen(MsgStatus::kPresentCorrupt);
      }
    }
    obs.status[m] = status;
  }
  return obs;
}

}  // namespace tracesel::debug
