#include "debug/debugger.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"

namespace tracesel::debug {

Debugger::Debugger(const soc::T2Design& design, const soc::Scenario& scenario,
                   const RootCauseCatalog& catalog)
    : messages_(&design.catalog()),
      flows_(scenario_flows(design, scenario)),
      catalog_(&catalog) {}

Debugger::Debugger(const flow::MessageCatalog& messages,
                   std::vector<const flow::Flow*> flows,
                   const RootCauseCatalog& catalog)
    : messages_(&messages), flows_(std::move(flows)), catalog_(&catalog) {
  if (flows_.empty()) throw std::invalid_argument("Debugger: no flows");
}

std::vector<flow::MessageId> Debugger::investigation_order(
    const Observation& observation, std::uint64_t seed) const {
  util::Rng rng(seed);

  // The symptom: the anomalous traced message belonging to the flow whose
  // failure the validator sees. Prefer absent > misrouted > corrupt (a
  // missing interrupt is noticed before a wrong payload is decoded).
  auto severity = [](MsgStatus s) {
    switch (s) {
      case MsgStatus::kAbsent: return 3;
      case MsgStatus::kMisrouted: return 2;
      case MsgStatus::kPresentCorrupt: return 1;
      case MsgStatus::kPresentCorrect: return 0;
      case MsgStatus::kUnknown: return 0;  // damaged evidence: no signal
    }
    return 0;
  };
  flow::MessageId symptom = flow::kInvalidMessage;
  int best = 0;
  for (flow::MessageId m : observation.traced) {
    const auto it = observation.status.find(m);
    if (it == observation.status.end()) continue;
    if (severity(it->second) > best) {
      best = severity(it->second);
      symptom = m;
    }
  }
  if (symptom == flow::kInvalidMessage && !observation.traced.empty())
    symptom = observation.traced.front();

  std::vector<flow::MessageId> order;
  auto push = [&](flow::MessageId m) {
    if (std::find(observation.traced.begin(), observation.traced.end(), m) ==
        observation.traced.end())
      return;  // untraced messages cannot be investigated
    if (std::find(order.begin(), order.end(), m) == order.end())
      order.push_back(m);
  };

  push(symptom);

  // Backtrack through the symptom's flow: its messages in reverse
  // flow-topological order (our flows list transitions source-to-sink).
  const flow::Flow* symptom_flow = nullptr;
  for (const flow::Flow* f : flows_) {
    if (symptom != flow::kInvalidMessage && f->uses_message(symptom)) {
      symptom_flow = f;
      break;
    }
  }
  if (symptom_flow != nullptr) {
    const auto& ts = symptom_flow->transitions();
    for (auto it = ts.rbegin(); it != ts.rend(); ++it) push(it->message);
  }

  // Remaining traced messages, flow by flow in shuffled order ("the choice
  // is pseudo-random and guided by the participating flows").
  std::vector<const flow::Flow*> rest(flows_.begin(), flows_.end());
  rng.shuffle(rest);
  for (const flow::Flow* f : rest) {
    std::vector<flow::MessageId> ms = f->messages();
    rng.shuffle(ms);
    for (flow::MessageId m : ms) push(m);
  }
  return order;
}

DebugReport Debugger::debug(const Observation& observation,
                            const std::vector<soc::TraceRecord>& buggy_records,
                            std::uint64_t seed) const {
  DebugReport report;
  report.catalog_size = catalog_->size();
  const std::vector<IpPair> legal =
      legal_ip_pairs((*messages_), flows_);
  report.legal_pairs = legal.size();

  const auto order = investigation_order(observation, seed);

  // Incrementally revealed observation: the debugger only "knows" the
  // status of messages it has already investigated.
  Observation revealed;
  std::vector<IpPair> investigated_pairs;
  std::size_t records = 0;

  auto plausible_now = [&] { return prune(*catalog_, revealed); };

  for (flow::MessageId m : order) {
    // Reveal this message.
    revealed.traced.push_back(m);
    std::sort(revealed.traced.begin(), revealed.traced.end());
    const auto it = observation.status.find(m);
    const MsgStatus found =
        it == observation.status.end() ? MsgStatus::kPresentCorrect
                                       : it->second;
    revealed.status[m] = found;

    records += static_cast<std::size_t>(
        std::count_if(buggy_records.begin(), buggy_records.end(),
                      [&](const soc::TraceRecord& r) {
                        return r.msg.message == m;
                      }));
    const IpPair pair = pair_of((*messages_), m);
    if (std::find(investigated_pairs.begin(), investigated_pairs.end(),
                  pair) == investigated_pairs.end())
      investigated_pairs.push_back(pair);

    const auto plausible = plausible_now();

    // Candidate pairs: still suspected by a plausible cause, or carrying
    // traced messages not yet investigated.
    std::vector<IpPair> candidates;
    for (const RootCause* c : plausible) {
      for (const IpPair& p : c->suspect_pairs((*messages_))) {
        if (std::find(candidates.begin(), candidates.end(), p) ==
            candidates.end())
          candidates.push_back(p);
      }
    }
    for (const IpPair& p : legal) {
      const auto over =
          messages_over_pair((*messages_), flows_, p);
      const bool fully_examined = std::all_of(
          over.begin(), over.end(), [&](flow::MessageId mm) {
            const bool traced =
                std::find(observation.traced.begin(),
                          observation.traced.end(),
                          mm) != observation.traced.end();
            if (!traced) return true;  // untraced: no evidence will come
            return std::find(revealed.traced.begin(), revealed.traced.end(),
                             mm) != revealed.traced.end();
          });
      if (!fully_examined &&
          std::find(candidates.begin(), candidates.end(), p) ==
              candidates.end())
        candidates.push_back(p);
    }

    DebugStep step;
    step.investigated = m;
    step.pair = pair;
    step.found = found;
    step.records_examined = records;
    step.plausible_causes = plausible.size();
    step.candidate_pairs = candidates.size();
    report.steps.push_back(step);

    if (plausible.size() <= 1) break;  // localized
  }

  for (const RootCause* c : plausible_now()) report.final_causes.push_back(*c);
  report.pairs_investigated = investigated_pairs.size();
  report.messages_investigated = records;
  return report;
}

}  // namespace tracesel::debug
