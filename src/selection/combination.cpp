#include "selection/combination.hpp"

#include <algorithm>
#include <stdexcept>

namespace tracesel::selection {

std::uint32_t combination_width(const flow::MessageCatalog& catalog,
                                std::span<const flow::MessageId> messages) {
  std::uint32_t w = 0;
  for (flow::MessageId m : messages) w += catalog.get(m).trace_width();
  return w;
}

namespace {

struct EnumState {
  const flow::MessageCatalog& catalog;
  std::span<const flow::MessageId> candidates;
  std::uint32_t budget;
  std::size_t max_results;
  bool maximal_only;
  std::vector<flow::MessageId> current;
  std::uint32_t current_width = 0;
  std::vector<Combination>* out;
};

/// True iff no candidate outside `chosen_prefix_end` could still be added.
bool is_maximal(const EnumState& st) {
  for (flow::MessageId m : st.candidates) {
    if (std::find(st.current.begin(), st.current.end(), m) !=
        st.current.end())
      continue;
    if (st.current_width + st.catalog.get(m).trace_width() <= st.budget)
      return false;
  }
  return true;
}

void enumerate(EnumState& st, std::size_t next) {
  if (!st.current.empty()) {
    if (!st.maximal_only || is_maximal(st)) {
      if (st.out->size() >= st.max_results)
        throw std::length_error(
            "enumerate_combinations: result cap exceeded; use "
            "maximal/greedy enumeration for large message sets");
      Combination c{st.current, st.current_width};
      std::sort(c.messages.begin(), c.messages.end());
      st.out->push_back(std::move(c));
    }
  }
  for (std::size_t i = next; i < st.candidates.size(); ++i) {
    const flow::MessageId m = st.candidates[i];
    const std::uint32_t w = st.catalog.get(m).trace_width();
    if (st.current_width + w > st.budget) continue;
    st.current.push_back(m);
    st.current_width += w;
    enumerate(st, i + 1);
    st.current.pop_back();
    st.current_width -= w;
  }
}

std::vector<Combination> run(const flow::MessageCatalog& catalog,
                             std::span<const flow::MessageId> candidates,
                             std::uint32_t budget, std::size_t max_results,
                             bool maximal_only) {
  // Reject duplicate candidates up front — a set semantics violation.
  std::vector<flow::MessageId> sorted(candidates.begin(), candidates.end());
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end())
    throw std::invalid_argument(
        "enumerate_combinations: duplicate candidate message");

  std::vector<Combination> out;
  EnumState st{catalog, candidates, budget, max_results, maximal_only,
               {},      0,          &out};
  enumerate(st, 0);
  return out;
}

}  // namespace

std::vector<Combination> enumerate_combinations(
    const flow::MessageCatalog& catalog,
    std::span<const flow::MessageId> candidates, std::uint32_t budget,
    std::size_t max_results) {
  return run(catalog, candidates, budget, max_results, /*maximal_only=*/false);
}

std::vector<Combination> enumerate_maximal_combinations(
    const flow::MessageCatalog& catalog,
    std::span<const flow::MessageId> candidates, std::uint32_t budget,
    std::size_t max_results) {
  return run(catalog, candidates, budget, max_results, /*maximal_only=*/true);
}

}  // namespace tracesel::selection
