#include "selection/packing.hpp"

#include <algorithm>
#include <stdexcept>

#include "selection/gain_memo.hpp"

namespace tracesel::selection {

std::vector<flow::MessageId> observable_messages(
    const Combination& base, const std::vector<PackedGroup>& packed) {
  std::vector<flow::MessageId> out = base.messages;
  for (const PackedGroup& pg : packed) out.push_back(pg.parent);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

PackingResult pack_leftover(const flow::MessageCatalog& catalog,
                            const InfoGainEngine& engine,
                            const Combination& base,
                            std::uint32_t buffer_width,
                            const std::vector<flow::MessageId>& candidates,
                            GainMemo* memo, flow::KernelMode mode) {
  if (base.width > buffer_width)
    throw std::invalid_argument("pack_leftover: base exceeds buffer width");

  const auto score = [&](std::span<const flow::MessageId> set) {
    return memo ? memo->gain(engine, set, mode)
                : engine.info_gain(set, mode);
  };

  PackingResult result;
  std::uint32_t leftover = buffer_width - base.width;
  std::vector<flow::MessageId> observable = base.messages;
  double current_gain = score(observable);

  // Candidate pool: every subgroup of a candidate message whose parent is
  // not yet observable.
  struct Candidate {
    flow::MessageId parent;
    const flow::Subgroup* sg;
  };
  auto collect = [&] {
    std::vector<Candidate> pool;
    for (flow::MessageId m : candidates) {
      if (std::find(observable.begin(), observable.end(), m) !=
          observable.end())
        continue;
      for (const flow::Subgroup& sg : catalog.get(m).subgroups) {
        if (sg.width <= leftover) pool.push_back(Candidate{m, &sg});
      }
    }
    return pool;
  };

  for (;;) {
    const auto pool = collect();
    if (pool.empty()) break;

    // Pick the candidate maximizing gain of the union; break ties toward
    // the narrower subgroup (leaves room for more packing).
    const Candidate* best = nullptr;
    double best_gain = current_gain;
    for (const Candidate& c : pool) {
      std::vector<flow::MessageId> trial = observable;
      trial.push_back(c.parent);
      const double g = score(trial);
      const bool better =
          g > best_gain ||
          (best != nullptr && g == best_gain && c.sg->width < best->sg->width);
      if (better) {
        best = &c;
        best_gain = g;
      }
    }
    // Stop once no subgroup strictly improves the gain: observing nothing
    // new is not worth trace bits.
    if (best == nullptr) break;

    result.packed.push_back(
        PackedGroup{best->parent, best->sg->name, best->sg->width});
    result.width_added += best->sg->width;
    leftover -= best->sg->width;
    observable.push_back(best->parent);
    current_gain = best_gain;
  }

  result.gain_after = current_gain;
  return result;
}

}  // namespace tracesel::selection
