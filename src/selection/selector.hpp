#pragma once
// The top-level message selection facade tying Steps 1-3 together
// (Sec. 3): enumerate fitting combinations, pick the one with maximal
// mutual information gain, then pack subgroups into the leftover buffer.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "selection/combination.hpp"
#include "selection/coverage.hpp"
#include "selection/info_gain.hpp"
#include "selection/packing.hpp"
#include "util/cancel.hpp"

namespace tracesel::selection {

class GainMemo;
class ParallelSelector;
struct SearchCheckpoint;

/// How Step 1/2 search the combination space.
enum class SearchMode {
  /// Score every fitting combination (paper Sec. 3.1-3.2). Exponential.
  kExhaustive,
  /// Score only maximal fitting combinations — lossless because the paper's
  /// gain estimator is monotone under adding messages. Default.
  kMaximal,
  /// Greedy marginal-gain ascent; near-linear, for very large message sets
  /// (the scalability objective of Sec. 1).
  kGreedy,
  /// Exact 0/1-knapsack dynamic program over (width, gain). Because the
  /// paper's gain estimator decomposes additively per message, this finds
  /// the true Step 2 optimum in O(messages x buffer_width) — the same
  /// result as kExhaustive at a tiny fraction of the cost.
  kKnapsack,
};

/// The single options struct for the whole selection pipeline. Every entry
/// point (MessageSelector, ParallelSelector, MultiScenarioSelector,
/// tracesel::Session, the CLI and the benches) takes its knobs from here.
struct SelectorConfig {
  std::uint32_t buffer_width = 32;  ///< bits, Table 3 uses 32
  bool packing = true;              ///< run Step 3
  SearchMode mode = SearchMode::kMaximal;
  std::size_t max_combinations = 1u << 22;
  /// Worker threads for the Step 1/2 search (and the other hot loops that
  /// honour this config): 1 = the classic serial path, 0 = one worker per
  /// hardware thread, N = exactly N workers. Results are bit-identical to
  /// the serial path for every value.
  std::size_t jobs = 1;
  /// Scoring/DP engine for the hot loops (DESIGN.md §14): kCompiled runs
  /// the flat per-spec kernel tables, kGeneric the original reference
  /// paths. A *runtime* knob — results are bit-identical either way — so
  /// it never enters cache keys and composes freely with --jobs / resume.
  flow::KernelMode kernel = flow::KernelMode::kCompiled;
  /// Observability sinks (tracesel::obs, DESIGN.md §10). Either being
  /// non-empty turns the obs layer on when the config reaches a
  /// tracesel::Session; Session::write_observability() then writes the
  /// Chrome trace-event JSON / flat metrics JSON to these paths.
  std::string trace_out;
  std::string metrics_out;

  // --- resilience (DESIGN.md §11, docs/resilience.md) ---
  /// Cooperative cancellation / deadline. The default token is inert. When
  /// it fires, the search stops within one shard granule and select()
  /// returns the best-so-far with SelectionResult::partial = true instead
  /// of throwing or hanging.
  util::CancelToken cancel;
  /// Non-empty: persist a SearchCheckpoint to this path (atomically) at
  /// every completed wave of `checkpoint_interval` seed shards.
  std::string checkpoint_path;
  std::size_t checkpoint_interval = 64;
  /// Non-zero: explore at most this many seed shards in this call, then
  /// checkpoint (if enabled) and return a partial result — deterministic
  /// time-slicing for cooperative schedulers and the kill/resume tests.
  std::size_t shard_budget = 0;
  /// Soft memory budget in MiB for the Step 2 search (0 = unlimited).
  /// Enforced via a deterministic estimate of the fitting-combination
  /// storage: when over budget the search degrades to a beam-limited
  /// variant and records it in SelectionResult::degradation. The same
  /// value should be passed to InterleaveOptions::mem_budget_mb to bound
  /// the product build too.
  std::size_t mem_budget_mb = 0;
  /// Continue a previously checkpointed search: completed shards are
  /// skipped, the running best / emitted counter / gain memo are
  /// preloaded, and the final selection is bit-identical to the
  /// uninterrupted run. The checkpoint's fingerprint must match this
  /// search (std::runtime_error otherwise).
  std::shared_ptr<const SearchCheckpoint> resume_from;
  /// Provenance stamped into written checkpoints so Session::resume can
  /// rebuild the pipeline; filled by tracesel::Session, ignored elsewhere.
  std::string checkpoint_spec_path;
  std::uint32_t checkpoint_instances = 0;
};

/// The full outcome of a selection run, carrying both the packed and
/// unpacked views so benches can report the paper's WP/WoP columns.
struct SelectionResult {
  Combination combination;          ///< Step 2 winner
  std::vector<PackedGroup> packed;  ///< Step 3 additions (empty if disabled)
  double gain = 0.0;                ///< I(X;Y) of the final observable set
  double gain_unpacked = 0.0;       ///< I(X;Y) of the Step 2 winner alone
  double coverage = 0.0;            ///< Def. 7 of the final observable set
  double coverage_unpacked = 0.0;
  std::uint32_t used_width = 0;     ///< combination width + packed widths
  std::uint32_t buffer_width = 0;

  /// True when the run was interrupted (cancel/deadline/shard_budget): the
  /// result is the exact champion of the explored region, not of the full
  /// space. A partial result may be empty (no shard finished).
  bool partial = false;
  /// Fraction of seed shards fully explored; 1.0 for complete runs. For the
  /// serial greedy/knapsack paths an interrupted run reports 0.0 (their
  /// progress has no shard granularity).
  double explored_fraction = 1.0;
  /// Non-empty when a memory budget degraded a stage (interleave fallback,
  /// beam-limited Step 2); see docs/resilience.md.
  std::string degradation;
  bool degraded() const { return !degradation.empty(); }

  double utilization() const {
    return buffer_width ? static_cast<double>(used_width) / buffer_width : 0.0;
  }
  double utilization_unpacked() const {
    return buffer_width
               ? static_cast<double>(combination.width) / buffer_width
               : 0.0;
  }

  /// Message ids observable in the trace (Step 2 set plus packed parents).
  std::vector<flow::MessageId> observable() const {
    return observable_messages(combination, packed);
  }
};

class MessageSelector {
 public:
  /// The candidate message pool is the union of messages labeling the
  /// interleaved flow's edges (i.e. the participating flows' alphabets).
  MessageSelector(const flow::MessageCatalog& catalog,
                  const flow::InterleavedFlow& u);

  SelectionResult select(const SelectorConfig& config = {}) const;

  /// select() plus a coverage constraint: every participating flow must
  /// contribute at least one observable message. The paper's pure-gain
  /// objective can leave a whole flow dark under tight budgets (nothing in
  /// Step 2 values *which* flow a bit watches); a validation plan usually
  /// cannot accept that. Repairs by evicting the lowest-contribution
  /// messages of over-represented flows. Throws std::runtime_error when a
  /// flow's narrowest message cannot fit the buffer at all.
  SelectionResult select_with_flow_constraint(
      const SelectorConfig& config = {}) const;

  const InfoGainEngine& engine() const { return engine_; }
  const flow::MessageCatalog& catalog() const { return *catalog_; }
  const flow::InterleavedFlow& interleaving() const { return *u_; }
  const std::vector<flow::MessageId>& candidates() const {
    return candidates_;
  }

 private:
  friend class ParallelSelector;

  /// Shared Step 2 epilogue: metrics + Step 3 packing over a winner.
  /// `memo` (optional) caches per-combination gains across steps.
  SelectionResult finalize(Combination combination,
                           const SelectorConfig& config,
                           GainMemo* memo) const;

  Combination search_exhaustive(const SelectorConfig& config,
                                bool maximal_only) const;
  Combination search_greedy(const SelectorConfig& config) const;
  Combination search_knapsack(const SelectorConfig& config) const;
  /// Memory-budget degradation of the exhaustive/maximal search: a
  /// level-synchronous beam over combination sizes, beam width derived
  /// deterministically from the budget. Approximate (and flagged via
  /// SelectionResult::degradation) but bounded-memory.
  Combination search_beam(const SelectorConfig& config,
                          std::size_t beam_width) const;
  /// Deterministic estimate (bytes) of what materializing every fitting
  /// combination would cost — counts only, never runtime RSS.
  double estimate_search_bytes(const SelectorConfig& config) const;

  const flow::MessageCatalog* catalog_;
  const flow::InterleavedFlow* u_;
  InfoGainEngine engine_;
  std::vector<flow::MessageId> candidates_;
};

}  // namespace tracesel::selection
