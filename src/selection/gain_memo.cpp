#include "selection/gain_memo.hpp"

#include <algorithm>
#include <bit>

#include "util/obs.hpp"

namespace tracesel::selection {

GainMemo::GainMemo(std::size_t max_entries)
    : per_shard_cap_(max_entries / kShards + 1) {}

std::uint64_t GainMemo::hash_key(std::span<const flow::MessageId> sorted) {
  // FNV-1a over the id bytes; ids are canonical once sorted.
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (flow::MessageId m : sorted) {
    h ^= static_cast<std::uint64_t>(m);
    h *= 0x100000001B3ull;
  }
  return h;
}

std::optional<double> GainMemo::lookup(
    std::span<const flow::MessageId> sorted) const {
  const std::uint64_t h = hash_key(sorted);
  const Shard& s = shard_of(h);
  std::lock_guard<std::mutex> lk(s.mu);
  const auto it = s.buckets.find(h);
  if (it == s.buckets.end()) return std::nullopt;
  for (const auto& [key, value] : it->second) {
    if (key.size() == sorted.size() &&
        std::equal(key.begin(), key.end(), sorted.begin()))
      return value;
  }
  return std::nullopt;
}

void GainMemo::store(std::span<const flow::MessageId> sorted, double gain) {
  const std::uint64_t h = hash_key(sorted);
  Shard& s = shard_of(h);
  std::lock_guard<std::mutex> lk(s.mu);
  if (s.entries >= per_shard_cap_) return;
  auto& bucket = s.buckets[h];
  for (const auto& [key, value] : bucket) {
    if (key.size() == sorted.size() &&
        std::equal(key.begin(), key.end(), sorted.begin()))
      return;
  }
  bucket.emplace_back(
      std::vector<flow::MessageId>(sorted.begin(), sorted.end()), gain);
  ++s.entries;
}

double GainMemo::gain(const InfoGainEngine& engine,
                      std::span<const flow::MessageId> combination,
                      flow::KernelMode mode) {
  std::vector<flow::MessageId> key(combination.begin(), combination.end());
  std::sort(key.begin(), key.end());
  if (const auto hit = lookup(key)) {
    OBS_COUNT("selection.memo.hits", 1);
    return *hit;
  }
  OBS_COUNT("selection.memo.misses", 1);
  // Score the caller's original order: info_gain sums per-message terms in
  // argument order, and packing callers pass unsorted unions — matching
  // their serial summation order keeps results bit-identical.
  const double g = engine.info_gain(combination, mode);
  store(key, g);
  return g;
}

std::vector<std::pair<std::vector<flow::MessageId>, std::uint64_t>>
GainMemo::entries() const {
  std::vector<std::pair<std::vector<flow::MessageId>, std::uint64_t>> out;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lk(s.mu);
    for (const auto& [h, bucket] : s.buckets) {
      for (const auto& [key, value] : bucket)
        out.emplace_back(key, std::bit_cast<std::uint64_t>(value));
    }
  }
  // Canonical order so the serialized checkpoint is independent of shard
  // iteration order (unordered_map) across runs and job counts.
  std::sort(out.begin(), out.end());
  return out;
}

void GainMemo::restore(
    const std::vector<std::pair<std::vector<flow::MessageId>,
                                std::uint64_t>>& entries) {
  for (const auto& [key, bits] : entries)
    store(key, std::bit_cast<double>(bits));
}

std::size_t GainMemo::size() const {
  std::size_t total = 0;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lk(s.mu);
    total += s.entries;
  }
  return total;
}

}  // namespace tracesel::selection
