#include "selection/coverage.hpp"

#include <algorithm>

namespace tracesel::selection {

std::vector<flow::NodeId> visible_states(
    const flow::InterleavedFlow& u,
    std::span<const flow::MessageId> selected) {
  std::vector<bool> visible(u.num_nodes(), false);
  for (const auto& e : u.edges()) {
    if (std::find(selected.begin(), selected.end(), e.label.message) !=
        selected.end())
      visible[e.to] = true;
  }
  std::vector<flow::NodeId> out;
  for (flow::NodeId n = 0; n < u.num_nodes(); ++n)
    if (visible[n]) out.push_back(n);
  return out;
}

double flow_spec_coverage(const flow::InterleavedFlow& u,
                          std::span<const flow::MessageId> selected) {
  if (u.num_nodes() == 0) return 0.0;
  return static_cast<double>(visible_states(u, selected).size()) /
         static_cast<double>(u.num_nodes());
}

}  // namespace tracesel::selection
