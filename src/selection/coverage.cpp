#include "selection/coverage.hpp"

#include <algorithm>

namespace tracesel::selection {

std::vector<flow::NodeId> visible_states(
    const flow::InterleavedFlow& u,
    std::span<const flow::MessageId> selected) {
  std::vector<bool> visible(u.num_nodes(), false);
  for (const auto& e : u.edges()) {
    if (std::find(selected.begin(), selected.end(), e.label.message) !=
        selected.end())
      visible[e.to] = true;
  }
  std::vector<flow::NodeId> out;
  for (flow::NodeId n = 0; n < u.num_nodes(); ++n)
    if (visible[n]) out.push_back(n);
  return out;
}

double flow_spec_coverage(const flow::InterleavedFlow& u,
                          std::span<const flow::MessageId> selected) {
  if (u.num_nodes() == 0) return 0.0;
  // Def. 7 ranges over the concrete product. Visibility is
  // orbit-invariant (the selected set is index-agnostic, so if one member
  // of an orbit is the target of a selected-labeled edge, all are), which
  // makes the weighted materialized count exact — and bit-identical to the
  // unreduced division, where every weight is 1.
  std::uint64_t visible_weight = 0;
  for (flow::NodeId n : visible_states(u, selected))
    visible_weight += u.node_weight(n);
  return static_cast<double>(visible_weight) /
         static_cast<double>(u.num_product_states());
}

}  // namespace tracesel::selection
