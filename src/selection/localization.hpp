#pragma once
// Path localization (Sec. 5.2): given an observed trace-buffer content (the
// projection of a buggy execution onto the traced messages), how small a
// fraction of the interleaved flow's executions remains consistent with it?
// Fewer consistent paths = tighter localization = less debug work.

#include <span>
#include <vector>

#include "flow/interleaved_flow.hpp"

namespace tracesel::selection {

struct LocalizationResult {
  double total_paths = 0.0;
  double consistent_paths = 0.0;
  /// consistent/total, in [0,1]; the paper reports this as a percentage
  /// ("we needed to explore no more than 6.11% of interleaved flow paths").
  double fraction = 0.0;
};

/// Counts executions of `u` whose projection onto `selected` starts with
/// `observed`. `observed` must only mention selected messages.
LocalizationResult localize(const flow::InterleavedFlow& u,
                            std::span<const flow::MessageId> selected,
                            const std::vector<flow::IndexedMessage>& observed);

}  // namespace tracesel::selection
