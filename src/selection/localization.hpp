#pragma once
// Path localization (Sec. 5.2): given an observed trace-buffer content (the
// projection of a buggy execution onto the traced messages), how small a
// fraction of the interleaved flow's executions remains consistent with it?
// Fewer consistent paths = tighter localization = less debug work.
//
// localize() assumes a perfect capture; localize_robust() is the hardened
// variant for lossy channels: it screens the observed projection against
// the selected set, falls back to the longest consistent prefix when
// channel faults (drops, reordering, corruption) make the full projection
// path-inconsistent, and reports a confidence weight instead of asserting
// a unique answer.

#include <span>
#include <vector>

#include "flow/interleaved_flow.hpp"
#include "util/result.hpp"

namespace tracesel::selection {

struct LocalizationResult {
  double total_paths = 0.0;
  double consistent_paths = 0.0;
  /// consistent/total, in [0,1]; the paper reports this as a percentage
  /// ("we needed to explore no more than 6.11% of interleaved flow paths").
  double fraction = 0.0;
};

/// Counts executions of `u` whose projection onto `selected` starts with
/// `observed`. `observed` must only mention selected messages.
LocalizationResult localize(const flow::InterleavedFlow& u,
                            std::span<const flow::MessageId> selected,
                            const std::vector<flow::IndexedMessage>& observed);

/// Localization under a degraded capture. The candidate-path set is sized
/// from whatever prefix of the (screened) observation is still consistent
/// with at least one execution; confidence reflects how much of the
/// observation actually supported the answer.
struct RobustLocalizationResult {
  LocalizationResult result;
  /// observed_used / observed_total, scaled to [0,1]; 1.0 = the entire
  /// observed projection was consistent (clean-capture behaviour), 0.0 = no
  /// ordering evidence survived.
  double confidence = 1.0;
  std::size_t observed_total = 0;    ///< records offered by the caller
  std::size_t observed_screened = 0; ///< after dropping non-selected ids
  std::size_t observed_used = 0;     ///< longest consistent prefix length
  /// True when any screening or prefix back-off was needed.
  bool degraded = false;
  /// True when the observation carried no usable ordering evidence at all
  /// (the localization then degenerates to "all paths possible").
  bool unusable = false;
};

/// Never throws on damaged observations; errs only on structural misuse
/// (an interleaving with no paths).
util::Result<RobustLocalizationResult> localize_robust(
    const flow::InterleavedFlow& u,
    std::span<const flow::MessageId> selected,
    const std::vector<flow::IndexedMessage>& observed);

}  // namespace tracesel::selection
