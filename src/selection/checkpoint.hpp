#pragma once
// Versioned, checksummed snapshots of the D-prefix sharded Step 1/2 search
// (DESIGN.md §11, docs/resilience.md).
//
// The parallel search dispatches its seed shards in waves; at every
// completed wave boundary the engine can persist (atomically, see
// util/atomic_file.hpp) everything needed to continue the search in a
// fresh process: the next seed index, the running best-so-far combination,
// the emitted-combination counter that enforces max_combinations, and the
// GainMemo contents. Because shards are merged in ascending seed order
// under a strict total order, a run resumed from any boundary produces a
// final selection bit-identical to the uninterrupted run — gains are
// serialized as raw IEEE-754 bit patterns so not even a decimal round-trip
// separates the two.
//
// A checkpoint also records provenance (spec path + instance count) and a
// fingerprint of the search identity (candidate set, widths, buffer,
// mode, interleaving shape). Loading verifies an FNV-1a checksum over the
// payload; resuming verifies the fingerprint against the rebuilt search.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "flow/types.hpp"
#include "util/result.hpp"

namespace tracesel::selection {

class MessageSelector;
struct SelectorConfig;

/// Everything needed to continue an interrupted sharded search.
struct SearchCheckpoint {
  static constexpr std::uint32_t kVersion = 1;

  // --- provenance (how to rebuild the session; may be empty) ---
  std::string spec_path;        ///< .flow path, or "t2" for t2 sessions
  std::uint32_t instances = 0;  ///< interleave() count / t2 scenario id

  // --- search identity ---
  std::uint64_t fingerprint = 0;  ///< search_fingerprint() of the run
  std::uint32_t buffer_width = 0;
  std::uint32_t mode = 0;  ///< SearchMode as integer
  bool packing = true;
  std::uint64_t max_combinations = 0;
  bool symmetry_reduction = true;
  std::uint64_t max_nodes = 0;

  // --- progress ---
  std::uint64_t seeds_total = 0;
  std::uint64_t next_seed = 0;  ///< first seed NOT yet fully explored
  std::uint64_t emitted = 0;    ///< post-filter emissions so far (the cap)

  // --- running best (strict total order champion over seeds < next_seed) ---
  bool best_valid = false;
  std::uint64_t best_gain_bits = 0;  ///< std::bit_cast of the double
  std::uint32_t best_width = 0;
  std::vector<flow::MessageId> best_messages;

  // --- gain memo (sorted by key; values as IEEE-754 bit patterns) ---
  std::vector<std::pair<std::vector<flow::MessageId>, std::uint64_t>> memo;
};

/// The identity of a Step 1/2 search: FNV-1a over the candidate ids and
/// trace widths, the buffer width, search mode, maximality, the
/// combination cap and the interleaving shape (product state/edge counts,
/// materialized node/edge counts). Deliberately independent of jobs /
/// checkpoint_interval / shard_budget — a checkpoint taken at 4 jobs
/// resumes correctly at 1 job and vice versa.
std::uint64_t search_fingerprint(const MessageSelector& selector,
                                 const SelectorConfig& config,
                                 bool maximal_only);

/// Text round-trip. serialize produces the full file contents including
/// the "tracesel-checkpoint <version> <checksum>" envelope header.
std::string serialize_checkpoint(const SearchCheckpoint& ck);
util::Result<SearchCheckpoint> parse_checkpoint(std::string_view text);

/// Atomic (temp + rename) write; a killed writer never corrupts `path`.
util::Status save_checkpoint(const std::string& path,
                             const SearchCheckpoint& ck);
/// Capped read + checksum + version verification.
util::Result<SearchCheckpoint> load_checkpoint(const std::string& path);

}  // namespace tracesel::selection
