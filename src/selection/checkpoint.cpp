#include "selection/checkpoint.hpp"

#include <charconv>
#include <sstream>

#include "flow/interleaved_flow.hpp"
#include "selection/selector.hpp"
#include "util/atomic_file.hpp"
#include "util/framing.hpp"

namespace tracesel::selection {

namespace {

// Checkpoints are small (the memo is capped) but a corrupted length field
// must not turn the loader into an allocator bomb.
constexpr std::size_t kMaxCheckpointBytes = 64u << 20;
constexpr std::size_t kMaxMemoEntries = 1u << 20;

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xFF;
    h *= 0x100000001B3ull;
  }
}

void append_u64(std::ostringstream& os, std::uint64_t v) { os << v; }

void append_hex(std::ostringstream& os, std::uint64_t v) {
  os << std::hex << v << std::dec;
}

/// Whitespace tokenizer for one checkpoint line.
std::vector<std::string> split(const std::string& line) {
  std::istringstream is(line);
  std::vector<std::string> tokens;
  std::string tok;
  while (is >> tok) tokens.push_back(tok);
  return tokens;
}

bool to_u64(const std::string& tok, std::uint64_t& out, int base = 10) {
  const char* first = tok.data();
  const char* last = tok.data() + tok.size();
  const auto [ptr, ec] = std::from_chars(first, last, out, base);
  return ec == std::errc{} && ptr == last;
}

util::Result<SearchCheckpoint> malformed(std::size_t line,
                                         const std::string& what) {
  return util::Result<SearchCheckpoint>::err(
      util::ErrorCode::kParse,
      "checkpoint line " + std::to_string(line) + ": " + what);
}

}  // namespace

std::uint64_t search_fingerprint(const MessageSelector& selector,
                                 const SelectorConfig& config,
                                 bool maximal_only) {
  const flow::InterleavedFlow& u = selector.interleaving();
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (flow::MessageId m : selector.candidates()) {
    fnv_mix(h, m);
    fnv_mix(h, selector.catalog().get(m).trace_width());
  }
  fnv_mix(h, config.buffer_width);
  fnv_mix(h, static_cast<std::uint64_t>(config.mode));
  fnv_mix(h, maximal_only ? 1 : 0);
  fnv_mix(h, config.max_combinations);
  fnv_mix(h, u.num_product_states());
  fnv_mix(h, u.num_product_edges());
  fnv_mix(h, u.num_nodes());
  fnv_mix(h, u.num_edges());
  return h;
}

std::string serialize_checkpoint(const SearchCheckpoint& ck) {
  std::ostringstream body;
  body << "spec " << (ck.spec_path.empty() ? "-" : ck.spec_path) << '\n';
  body << "instances " << ck.instances << '\n';
  body << "fingerprint ";
  append_hex(body, ck.fingerprint);
  body << '\n';
  body << "buffer_width " << ck.buffer_width << '\n';
  body << "mode " << ck.mode << '\n';
  body << "packing " << (ck.packing ? 1 : 0) << '\n';
  body << "max_combinations ";
  append_u64(body, ck.max_combinations);
  body << '\n';
  body << "symmetry_reduction " << (ck.symmetry_reduction ? 1 : 0) << '\n';
  body << "max_nodes ";
  append_u64(body, ck.max_nodes);
  body << '\n';
  body << "seeds_total ";
  append_u64(body, ck.seeds_total);
  body << '\n';
  body << "next_seed ";
  append_u64(body, ck.next_seed);
  body << '\n';
  body << "emitted ";
  append_u64(body, ck.emitted);
  body << '\n';
  body << "best " << (ck.best_valid ? 1 : 0);
  if (ck.best_valid) {
    body << ' ';
    append_hex(body, ck.best_gain_bits);
    body << ' ' << ck.best_width;
    for (flow::MessageId m : ck.best_messages) body << ' ' << m;
  }
  body << '\n';
  body << "memo_entries " << ck.memo.size() << '\n';
  for (const auto& [key, bits] : ck.memo) {
    body << "memo ";
    append_hex(body, bits);
    for (flow::MessageId m : key) body << ' ' << m;
    body << '\n';
  }
  body << "end\n";

  // The "tracesel-checkpoint <version> <checksum>" envelope is the shared
  // util codec, so work units and daemon job requests validate the same way.
  return util::encode_envelope("tracesel-checkpoint", SearchCheckpoint::kVersion,
                               body.str());
}

util::Result<SearchCheckpoint> parse_checkpoint(std::string_view text) {
  const auto payload = util::decode_envelope(
      text, "tracesel-checkpoint", SearchCheckpoint::kVersion, "checkpoint");
  if (!payload.ok()) return payload.error();

  std::istringstream stream{std::string(payload.value())};
  std::string line;
  std::size_t lineno = 1;  // line 1 is the envelope header

  SearchCheckpoint ck;
  bool saw_end = false;
  std::size_t memo_expected = 0;

  // Field readers keyed on the first token. `spec` takes the rest of the
  // line verbatim (paths may contain spaces).
  while (std::getline(stream, line)) {
    ++lineno;
    const auto tokens = split(line);
    if (tokens.empty()) continue;
    const std::string& key = tokens[0];
    std::uint64_t v = 0;

    if (key == "end") {
      saw_end = true;
      break;
    } else if (key == "spec") {
      const std::size_t at = line.find("spec ");
      std::string rest = line.substr(at + 5);
      while (!rest.empty() && (rest.back() == '\r' || rest.back() == ' '))
        rest.pop_back();
      ck.spec_path = rest == "-" ? "" : rest;
    } else if (key == "memo") {
      if (tokens.size() < 2 || !to_u64(tokens[1], v, 16))
        return malformed(lineno, "bad memo entry");
      std::vector<flow::MessageId> ids;
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        std::uint64_t m = 0;
        if (!to_u64(tokens[i], m) || m > ~flow::MessageId{0})
          return malformed(lineno, "bad memo message id");
        ids.push_back(static_cast<flow::MessageId>(m));
      }
      if (ck.memo.size() >= kMaxMemoEntries)
        return malformed(lineno, "too many memo entries");
      ck.memo.emplace_back(std::move(ids), v);
    } else if (key == "best") {
      if (tokens.size() < 2 || !to_u64(tokens[1], v))
        return malformed(lineno, "bad best record");
      ck.best_valid = v != 0;
      if (ck.best_valid) {
        std::uint64_t w = 0;
        if (tokens.size() < 4 || !to_u64(tokens[2], ck.best_gain_bits, 16) ||
            !to_u64(tokens[3], w))
          return malformed(lineno, "bad best record");
        ck.best_width = static_cast<std::uint32_t>(w);
        for (std::size_t i = 4; i < tokens.size(); ++i) {
          std::uint64_t m = 0;
          if (!to_u64(tokens[i], m) || m > ~flow::MessageId{0})
            return malformed(lineno, "bad best message id");
          ck.best_messages.push_back(static_cast<flow::MessageId>(m));
        }
        if (ck.best_messages.empty())
          return malformed(lineno, "valid best with no messages");
      }
    } else {
      if (tokens.size() != 2)
        return malformed(lineno, "expected '" + key + " <value>'");
      const bool hex = key == "fingerprint";
      if (!to_u64(tokens[1], v, hex ? 16 : 10))
        return malformed(lineno, "bad value for '" + key + "'");
      if (key == "instances") {
        ck.instances = static_cast<std::uint32_t>(v);
      } else if (key == "fingerprint") {
        ck.fingerprint = v;
      } else if (key == "buffer_width") {
        ck.buffer_width = static_cast<std::uint32_t>(v);
      } else if (key == "mode") {
        ck.mode = static_cast<std::uint32_t>(v);
      } else if (key == "packing") {
        ck.packing = v != 0;
      } else if (key == "max_combinations") {
        ck.max_combinations = v;
      } else if (key == "symmetry_reduction") {
        ck.symmetry_reduction = v != 0;
      } else if (key == "max_nodes") {
        ck.max_nodes = v;
      } else if (key == "seeds_total") {
        ck.seeds_total = v;
      } else if (key == "next_seed") {
        ck.next_seed = v;
      } else if (key == "emitted") {
        ck.emitted = v;
      } else if (key == "memo_entries") {
        if (v > kMaxMemoEntries)
          return malformed(lineno, "memo_entries exceeds the loader cap");
        memo_expected = static_cast<std::size_t>(v);
      } else {
        return malformed(lineno, "unknown field '" + key + "'");
      }
    }
  }

  if (!saw_end)
    return util::Result<SearchCheckpoint>::err(
        util::ErrorCode::kCorruptCapture,
        "checkpoint has no 'end' marker (truncated file)");
  if (ck.memo.size() != memo_expected)
    return util::Result<SearchCheckpoint>::err(
        util::ErrorCode::kCorruptCapture,
        "checkpoint memo entry count mismatch");
  if (ck.next_seed > ck.seeds_total)
    return util::Result<SearchCheckpoint>::err(
        util::ErrorCode::kCorruptCapture,
        "checkpoint next_seed exceeds seeds_total");
  return ck;
}

util::Status save_checkpoint(const std::string& path,
                             const SearchCheckpoint& ck) {
  return util::atomic_write_file(path, serialize_checkpoint(ck));
}

util::Result<SearchCheckpoint> load_checkpoint(const std::string& path) {
  auto text = util::read_file_capped(path, kMaxCheckpointBytes);
  if (!text.ok()) return text.error();
  return parse_checkpoint(text.value());
}

}  // namespace tracesel::selection
