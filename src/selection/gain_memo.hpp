#pragma once
// Per-combination information-gain memo shared across Step 2 search and
// Step 3 packing (and across repeated select() calls on one selector).
// InfoGainEngine::info_gain is a pure function of the message set once the
// engine is built, so caching is transparent: a hit returns the exact
// double a recomputation would produce, preserving bit-identical results.
//
// Invariants:
//  - keys are the canonical (sorted, as stored) message-id vectors;
//  - entries are never updated, only inserted (the value for a key is
//    unique), so concurrent readers can never observe a torn value;
//  - the map is sharded by key hash with one mutex per shard, and each
//    shard stops inserting past its capacity slice — lookups stay O(1)
//    and memory stays bounded on exhaustive searches.

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "selection/info_gain.hpp"

namespace tracesel::selection {

class GainMemo {
 public:
  /// `max_entries` bounds the total entry count across all shards.
  explicit GainMemo(std::size_t max_entries = 1u << 16);

  /// Exact-key lookup; `sorted` must be sorted ascending.
  std::optional<double> lookup(
      std::span<const flow::MessageId> sorted) const;

  /// Inserts (no-op when the key is present or the shard is full).
  void store(std::span<const flow::MessageId> sorted, double gain);

  /// Lookup-or-compute-and-store. `combination` need not be sorted; a
  /// sorted copy is used as the key. Returns exactly what
  /// engine.info_gain(combination) would. `mode` picks the scoring kernel
  /// for misses; hits are mode-independent because both kernels produce
  /// the same bits (so one memo serves mixed-mode tenants).
  double gain(const InfoGainEngine& engine,
              std::span<const flow::MessageId> combination,
              flow::KernelMode mode = flow::KernelMode::kGeneric);

  std::size_t size() const;

  /// Snapshot of every entry, keys ascending lexicographically and gains as
  /// IEEE-754 bit patterns — the checkpoint exchange format (bit-exact
  /// round-trip regardless of locale or formatting).
  std::vector<std::pair<std::vector<flow::MessageId>, std::uint64_t>>
  entries() const;

  /// Preloads entries captured by entries() (e.g. from a checkpoint); keys
  /// must be sorted message-id vectors. Shard caps still apply.
  void restore(
      const std::vector<std::pair<std::vector<flow::MessageId>,
                                  std::uint64_t>>& entries);

 private:
  static constexpr std::size_t kShards = 16;
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::uint64_t, std::vector<std::pair<
        std::vector<flow::MessageId>, double>>> buckets;
    std::size_t entries = 0;
  };

  static std::uint64_t hash_key(std::span<const flow::MessageId> sorted);
  Shard& shard_of(std::uint64_t h) { return shards_[h % kShards]; }
  const Shard& shard_of(std::uint64_t h) const { return shards_[h % kShards]; }

  std::size_t per_shard_cap_;
  Shard shards_[kShards];
};

}  // namespace tracesel::selection
