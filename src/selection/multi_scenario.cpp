#include "selection/multi_scenario.hpp"

#include <algorithm>
#include <stdexcept>

#include "selection/coverage.hpp"
#include "util/thread_pool.hpp"

namespace tracesel::selection {

MultiScenarioSelector::MultiScenarioSelector(
    const flow::MessageCatalog& catalog,
    std::vector<WeightedScenario> scenarios, std::size_t jobs)
    : catalog_(&catalog), scenarios_(std::move(scenarios)) {
  if (scenarios_.empty())
    throw std::invalid_argument("MultiScenarioSelector: no scenarios");
  for (const WeightedScenario& s : scenarios_) {
    if (s.interleaving == nullptr)
      throw std::invalid_argument("MultiScenarioSelector: null interleaving");
    if (s.weight <= 0.0)
      throw std::invalid_argument(
          "MultiScenarioSelector: weights must be positive");
    for (const auto& e : s.interleaving->edges()) {
      if (std::find(candidates_.begin(), candidates_.end(),
                    e.label.message) == candidates_.end())
        candidates_.push_back(e.label.message);
    }
  }
  std::sort(candidates_.begin(), candidates_.end());

  // Each engine depends only on its own interleaving, so construction is
  // embarrassingly parallel; each worker writes its own slot.
  engines_.resize(scenarios_.size());
  const auto build = [this](std::size_t i) {
    engines_[i] =
        std::make_unique<InfoGainEngine>(*scenarios_[i].interleaving);
  };
  if (util::ThreadPool::resolve_jobs(jobs) == 1) {
    for (std::size_t i = 0; i < scenarios_.size(); ++i) build(i);
  } else {
    util::ThreadPool pool(util::ThreadPool::resolve_jobs(jobs));
    pool.parallel_for(0, scenarios_.size(), build);
  }
}

double MultiScenarioSelector::contribution(flow::MessageId m) const {
  double total = 0.0;
  for (std::size_t i = 0; i < engines_.size(); ++i)
    total += scenarios_[i].weight * engines_[i]->message_contribution(m);
  return total;
}

MultiScenarioResult MultiScenarioSelector::select(
    std::uint32_t buffer_width, bool packing) const {
  SelectorConfig config;
  config.buffer_width = buffer_width;
  config.packing = packing;
  return select(config);
}

MultiScenarioResult MultiScenarioSelector::select(
    const SelectorConfig& config) const {
  const std::uint32_t buffer_width = config.buffer_width;
  const bool packing = config.packing;
  MultiScenarioResult result;
  result.buffer_width = buffer_width;

  // ---- exact knapsack over the weighted aggregate gain ----
  const std::size_t n = candidates_.size();
  struct Cell {
    double gain = 0.0;
    std::uint32_t used = 0;
  };
  std::vector<std::vector<Cell>> dp(
      n + 1, std::vector<Cell>(buffer_width + 1, Cell{}));
  for (std::size_t i = 1; i <= n; ++i) {
    const std::uint32_t w = catalog_->get(candidates_[i - 1]).trace_width();
    const double v = contribution(candidates_[i - 1]);
    for (std::uint32_t cap = 0; cap <= buffer_width; ++cap) {
      dp[i][cap] = dp[i - 1][cap];
      if (w <= cap) {
        const Cell with{dp[i - 1][cap - w].gain + v,
                        dp[i - 1][cap - w].used + w};
        if (with.gain > dp[i][cap].gain ||
            (with.gain == dp[i][cap].gain && with.used < dp[i][cap].used))
          dp[i][cap] = with;
      }
    }
  }
  std::uint32_t cap = buffer_width;
  for (std::size_t i = n; i > 0; --i) {
    const Cell& cur = dp[i][cap];
    const Cell& without = dp[i - 1][cap];
    if (cur.gain == without.gain && cur.used == without.used) continue;
    const std::uint32_t w = catalog_->get(candidates_[i - 1]).trace_width();
    result.combination.messages.push_back(candidates_[i - 1]);
    result.combination.width += w;
    cap -= w;
  }
  if (result.combination.messages.empty())
    throw std::runtime_error(
        "MultiScenarioSelector: no message fits the trace buffer");
  std::sort(result.combination.messages.begin(),
            result.combination.messages.end());
  result.used_width = result.combination.width;

  // ---- greedy subgroup packing with the aggregate objective ----
  std::vector<flow::MessageId> observable = result.combination.messages;
  if (packing) {
    std::uint32_t leftover = buffer_width - result.combination.width;
    for (;;) {
      flow::MessageId best_parent = flow::kInvalidMessage;
      const flow::Subgroup* best_sg = nullptr;
      double best_gain = 0.0;
      for (const flow::MessageId m : candidates_) {
        if (std::find(observable.begin(), observable.end(), m) !=
            observable.end())
          continue;
        const double g = contribution(m);
        if (g <= 0.0) continue;
        for (const flow::Subgroup& sg : catalog_->get(m).subgroups) {
          if (sg.width > leftover) continue;
          if (g > best_gain ||
              (g == best_gain && best_sg != nullptr &&
               sg.width < best_sg->width)) {
            best_parent = m;
            best_sg = &sg;
            best_gain = g;
          }
        }
      }
      if (best_sg == nullptr) break;
      result.packed.push_back(
          PackedGroup{best_parent, best_sg->name, best_sg->width});
      result.used_width += best_sg->width;
      leftover -= best_sg->width;
      observable.push_back(best_parent);
    }
  }

  // ---- metrics ----
  for (const flow::MessageId m : observable)
    result.weighted_gain += contribution(m);
  // Per-scenario coverage is independent across scenarios; each worker
  // writes its own slot, so the vector is identical for every job count.
  result.per_scenario_coverage.resize(scenarios_.size());
  const auto cover = [&](std::size_t i) {
    result.per_scenario_coverage[i] =
        flow_spec_coverage(*scenarios_[i].interleaving, observable);
  };
  if (util::ThreadPool::resolve_jobs(config.jobs) == 1) {
    for (std::size_t i = 0; i < scenarios_.size(); ++i) cover(i);
  } else {
    util::ThreadPool pool(util::ThreadPool::resolve_jobs(config.jobs));
    pool.parallel_for(0, scenarios_.size(), cover);
  }
  return result;
}

}  // namespace tracesel::selection
