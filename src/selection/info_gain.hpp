#pragma once
// Step 2 of the selection method (Sec. 3.2): mutual information gain of a
// message combination over the interleaved flow.
//
// Random variables, exactly as the paper defines them:
//   X  — the product state of the interleaved flow; uniform, p(x) = 1/|S|.
//   Yi — the indexed messages corresponding to a candidate combination Y'i.
// Marginal: p(y) = occurrences(y) / occurrences(all indexed messages), i.e.
// the denominator counts *every* edge of the interleaved flow, not just the
// candidate's — so the candidate's marginals need not sum to 1. That is the
// paper's estimator; it makes I monotone under adding messages to the
// combination, which Step 2 exploits.
// Conditional: p(x|y) = (# occurrences of y leading to x) / occurrences(y).
// Joint: p(x,y) = p(x|y) p(y).
//
//   I(X;Y) = sum_{x,y} p(x,y) ln( p(x,y) / (p(x) p(y)) )
//
// Natural logarithm — this reproduces the paper's worked example
// (I(X;Y1) = 1.073 for Y'1 = {ReqE, GntE} on the two-instance cache
// coherence interleaving of Fig. 2).

#include <span>
#include <unordered_map>
#include <vector>

#include "flow/interleaved_flow.hpp"

namespace tracesel::selection {

/// Precomputes per-indexed-message edge statistics of one interleaved flow
/// and answers information-gain queries for arbitrary message combinations.
class InfoGainEngine {
 public:
  explicit InfoGainEngine(const flow::InterleavedFlow& u);

  /// I(X;Y) for the combination given as a set of message ids. All indexed
  /// instances of each id contribute to Y. Messages that label no edge of
  /// the interleaved flow contribute zero.
  double info_gain(std::span<const flow::MessageId> combination) const;

  /// info_gain dispatching on the kernel mode: kGeneric is the hash-map
  /// path above, kCompiled sums the dense per-message table instead — the
  /// same doubles added in the same (argument) order, so results are
  /// bit-identical. (Absent ids add +0.0, which is exact: contributions are
  /// nonnegative, so no partial sum is ever -0.0.)
  double info_gain(std::span<const flow::MessageId> combination,
                   flow::KernelMode mode) const;

  /// The contribution of a single indexed message to I(X;Y) — the inner sum
  /// over x for this y. Nonnegative; exposed for tests and diagnostics.
  double contribution(const flow::IndexedMessage& im) const;

  /// Aggregate contribution of a (unindexed) message: the sum over its
  /// indexed instances. Because the paper's estimator is additive per
  /// message, info_gain(C) == sum of message_contribution over C — the
  /// property the exact knapsack search mode exploits.
  double message_contribution(flow::MessageId m) const;

  /// message_contribution dispatching on the kernel mode (bit-identical).
  double message_contribution(flow::MessageId m,
                              flow::KernelMode mode) const;

  /// Dense contribution table indexed by MessageId (+0.0 for ids labeling
  /// no edge); what the compiled Step-2 kernel and GainCursor read.
  const std::vector<double>& message_table() const { return dense_; }

  /// Upper bound on the gain any combination can reach on this flow
  /// (the gain of tracing every message).
  double max_gain() const { return total_gain_; }

  const flow::InterleavedFlow& interleaving() const { return *u_; }

 private:
  const flow::InterleavedFlow* u_;
  // contribution of each indexed message, precomputed once.
  std::unordered_map<flow::IndexedMessage, double> contrib_;
  // contributions aggregated per (unindexed) message id.
  std::unordered_map<flow::MessageId, double> contrib_by_message_;
  // contrib_by_message_ flattened into a MessageId-indexed array.
  std::vector<double> dense_;
  double total_gain_ = 0.0;
};

/// Incremental Step-2 scorer for enumeration walks (the compiled kernel's
/// hot loop): maintains the exact left-to-right prefix sums of the current
/// combination's per-message contributions as a stack, so scoring after a
/// push/pop is O(1) instead of O(|combination|) — and the top of the stack
/// is bit-identical to info_gain(current) because it *is* the same
/// summation, merely not re-run from scratch.
class GainCursor {
 public:
  explicit GainCursor(const InfoGainEngine& engine)
      : table_(&engine.message_table()) {
    sums_.reserve(64);
    sums_.push_back(0.0);
  }

  void push(flow::MessageId m) {
    const double c = m < table_->size() ? (*table_)[m] : 0.0;
    sums_.push_back(sums_.back() + c);
  }
  void pop() { sums_.pop_back(); }

  /// Gain of the pushed-so-far combination, in push order.
  double gain() const { return sums_.back(); }
  std::size_t depth() const { return sums_.size() - 1; }

 private:
  const std::vector<double>* table_;
  std::vector<double> sums_;  ///< sums_[d] = gain of the first d pushes
};

}  // namespace tracesel::selection
