#include "selection/parallel_selector.hpp"

#include <atomic>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <vector>

#include "util/obs.hpp"

namespace tracesel::selection {

namespace {

/// Per-task champion under the serial search's strict total order:
/// gain descending, then width ascending, then lexicographic messages.
struct Best {
  bool valid = false;
  double gain = -1.0;
  Combination combo;

  void offer(double g, const std::vector<flow::MessageId>& messages,
             std::uint32_t width) {
    const bool better =
        !valid || g > gain ||
        (g == gain &&
         (width < combo.width ||
          (width == combo.width && messages < combo.messages)));
    if (better) {
      valid = true;
      gain = g;
      combo.messages = messages;
      combo.width = width;
    }
  }

  void offer(const Best& other) {
    if (other.valid) offer(other.gain, other.combo.messages, other.combo.width);
  }
};

/// One shard of the search space: a fitting prefix of candidate indexes.
/// `subtree` tasks own every extension past `next`; leaf tasks own exactly
/// the prefix itself.
struct Seed {
  std::vector<std::size_t> prefix;
  std::uint32_t width = 0;
  std::size_t next = 0;
  bool subtree = false;
};

}  // namespace

ParallelSelector::ParallelSelector(const flow::MessageCatalog& catalog,
                                   const flow::InterleavedFlow& u)
    : owned_(std::make_unique<MessageSelector>(catalog, u)),
      base_(owned_.get()) {}

ParallelSelector::ParallelSelector(const MessageSelector& base)
    : base_(&base) {}

Combination ParallelSelector::search_sharded(const SelectorConfig& config,
                                             bool maximal_only,
                                             util::ThreadPool& pool) const {
  OBS_SPAN("selection.parallel.search");
  const auto& candidates = base_->candidates();
  const auto& catalog = base_->catalog();
  const InfoGainEngine& engine = base_->engine();
  const std::size_t n = candidates.size();
  const std::uint32_t budget = config.buffer_width;

  std::vector<std::uint32_t> widths(n);
  for (std::size_t i = 0; i < n; ++i)
    widths[i] = catalog.get(candidates[i]).trace_width();

  // Shard prefix depth: 3 gives ~C(n,3) well-balanced subtrees; drop to 2
  // for very large alphabets to keep the task count bounded.
  const std::size_t depth = n <= 40 ? 3 : 2;

  std::vector<Seed> seeds;
  {
    std::vector<std::size_t> prefix;
    std::uint32_t width = 0;
    auto gen = [&](auto&& self, std::size_t next) -> void {
      for (std::size_t i = next; i < n; ++i) {
        if (width + widths[i] > budget) continue;
        prefix.push_back(i);
        width += widths[i];
        const bool subtree = prefix.size() == depth;
        seeds.push_back(Seed{prefix, width, i + 1, subtree});
        if (!subtree) self(self, i + 1);
        width -= widths[i];
        prefix.pop_back();
      }
    };
    gen(gen, 0);
  }
  OBS_COUNT("selection.parallel.seeds", seeds.size());

  std::vector<Best> results(seeds.size());
  std::atomic<std::size_t> emitted{0};

  for (std::size_t s = 0; s < seeds.size(); ++s) {
    pool.submit([&, s] {
      const Seed& seed = seeds[s];
      Best best;
      std::vector<char> in_current(n, 0);
      std::vector<flow::MessageId> current;
      current.reserve(n);
      std::uint32_t width = 0;
      for (std::size_t i : seed.prefix) {
        in_current[i] = 1;
        current.push_back(candidates[i]);
        width += widths[i];
      }

      const auto consider = [&] {
        if (maximal_only) {
          for (std::size_t i = 0; i < n; ++i) {
            if (!in_current[i] && width + widths[i] <= budget) return;
          }
        }
        // Same cap semantics as the serial enumerator: only combinations
        // that pass the maximality filter count, and emission number
        // max_combinations + 1 throws.
        if (emitted.fetch_add(1, std::memory_order_relaxed) >=
            config.max_combinations)
          throw std::length_error(
              "enumerate_combinations: result cap exceeded; use "
              "maximal/greedy enumeration for large message sets");
        best.offer(engine.info_gain(current), current, width);
      };

      if (!seed.subtree) {
        consider();
      } else {
        auto walk = [&](auto&& self, std::size_t next) -> void {
          consider();
          for (std::size_t i = next; i < n; ++i) {
            if (width + widths[i] > budget) continue;
            in_current[i] = 1;
            current.push_back(candidates[i]);
            width += widths[i];
            self(self, i + 1);
            width -= widths[i];
            current.pop_back();
            in_current[i] = 0;
          }
        };
        walk(walk, seed.next);
      }
      results[s] = std::move(best);
    });
  }
  pool.wait();
  OBS_COUNT("selection.combinations", emitted.load(std::memory_order_relaxed));

  Best overall;
  for (const Best& b : results) overall.offer(b);
  if (!overall.valid)
    throw std::runtime_error(
        "MessageSelector: no message fits the trace buffer");
  return std::move(overall.combo);
}

SelectionResult ParallelSelector::select(const SelectorConfig& config,
                                         util::ThreadPool* pool) const {
  if (config.mode == SearchMode::kGreedy ||
      config.mode == SearchMode::kKnapsack) {
    // Greedy ascent and the knapsack DP are sequential by nature (each
    // step/row depends on the previous) and already near-linear; run them
    // on the serial path.
    SelectorConfig serial = config;
    serial.jobs = 1;
    return base_->select(serial);
  }

  std::optional<util::ThreadPool> local;
  if (pool == nullptr) {
    local.emplace(util::ThreadPool::resolve_jobs(config.jobs));
    pool = &*local;
  }
  Combination winner = search_sharded(
      config, /*maximal_only=*/config.mode == SearchMode::kMaximal, *pool);
  return base_->finalize(std::move(winner), config, &memo_);
}

}  // namespace tracesel::selection
