#include "selection/parallel_selector.hpp"

#include <atomic>
#include <bit>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <vector>

#include "flow/interleaved_flow.hpp"
#include "selection/checkpoint.hpp"
#include "util/obs.hpp"

namespace tracesel::selection {

namespace {

/// Per-task champion under the serial search's strict total order:
/// gain descending, then width ascending, then lexicographic messages.
struct Best {
  bool valid = false;
  double gain = -1.0;
  Combination combo;

  void offer(double g, const std::vector<flow::MessageId>& messages,
             std::uint32_t width) {
    const bool better =
        !valid || g > gain ||
        (g == gain &&
         (width < combo.width ||
          (width == combo.width && messages < combo.messages)));
    if (better) {
      valid = true;
      gain = g;
      combo.messages = messages;
      combo.width = width;
    }
  }

  void offer(const Best& other) {
    if (other.valid) offer(other.gain, other.combo.messages, other.combo.width);
  }
};

/// Shared combination walker: enumerates every combination owned by one
/// seed with the exact order, width accounting and maximality filter of
/// the serial search. Both the pooled path (search_sharded) and the
/// distributed path (run_unit) drive it, differing only in their emit
/// policy — which is the whole point: one enumerator, bit-identical
/// emissions everywhere.
struct SeedWalker {
  const std::vector<flow::MessageId>& candidates;
  const std::vector<std::uint32_t>& widths;
  std::uint32_t budget;
  bool maximal_only;

  /// keep_going() is polled at every node (pre-filter) — cancellation.
  /// emit(messages, width) fires for every post-filter combination and
  /// returns false to stop the walk (cap crossing). on_push(i) / on_pop()
  /// mirror every candidate entering/leaving `current` (prefix included),
  /// so an incremental scorer (GainCursor) can ride the walk. Returns
  /// false iff the walk stopped early.
  template <typename KeepGoing, typename Emit, typename OnPush,
            typename OnPop>
  bool run(const ShardSeed& seed, KeepGoing&& keep_going, Emit&& emit,
           OnPush&& on_push, OnPop&& on_pop) const {
    const std::size_t n = candidates.size();
    std::vector<char> in_current(n, 0);
    std::vector<flow::MessageId> current;
    current.reserve(n);
    std::uint32_t width = 0;
    for (std::size_t i : seed.prefix) {
      in_current[i] = 1;
      current.push_back(candidates[i]);
      width += widths[i];
      on_push(i);
    }

    bool stopped = false;
    const auto consider = [&] {
      if (!keep_going()) {
        stopped = true;
        return;
      }
      if (maximal_only) {
        for (std::size_t i = 0; i < n; ++i) {
          if (!in_current[i] && width + widths[i] <= budget) return;
        }
      }
      if (!emit(current, width)) stopped = true;
    };

    if (!seed.subtree) {
      consider();
    } else {
      auto walk = [&](auto&& self, std::size_t next) -> void {
        consider();
        if (stopped) return;
        for (std::size_t i = next; i < n && !stopped; ++i) {
          if (width + widths[i] > budget) continue;
          in_current[i] = 1;
          current.push_back(candidates[i]);
          width += widths[i];
          on_push(i);
          self(self, i + 1);
          on_pop();
          width -= widths[i];
          current.pop_back();
          in_current[i] = 0;
        }
      };
      walk(walk, seed.next);
    }
    return !stopped;
  }
};

std::vector<std::uint32_t> candidate_widths(const MessageSelector& base) {
  const auto& candidates = base.candidates();
  const auto& catalog = base.catalog();
  std::vector<std::uint32_t> widths(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i)
    widths[i] = catalog.get(candidates[i]).trace_width();
  return widths;
}

}  // namespace

std::vector<ShardSeed> shard_seeds(const MessageSelector& base,
                                   const SelectorConfig& config) {
  const std::size_t n = base.candidates().size();
  const std::uint32_t budget = config.buffer_width;
  const std::vector<std::uint32_t> widths = candidate_widths(base);

  // Shard prefix depth: 3 gives ~C(n,3) well-balanced subtrees; drop to 2
  // for very large alphabets to keep the task count bounded.
  const std::size_t depth = n <= 40 ? 3 : 2;

  std::vector<ShardSeed> seeds;
  std::vector<std::size_t> prefix;
  std::uint32_t width = 0;
  auto gen = [&](auto&& self, std::size_t next) -> void {
    for (std::size_t i = next; i < n; ++i) {
      if (width + widths[i] > budget) continue;
      prefix.push_back(i);
      width += widths[i];
      const bool subtree = prefix.size() == depth;
      seeds.push_back(ShardSeed{prefix, width, i + 1, subtree});
      if (!subtree) self(self, i + 1);
      width -= widths[i];
      prefix.pop_back();
    }
  };
  gen(gen, 0);
  return seeds;
}

ParallelSelector::ParallelSelector(const flow::MessageCatalog& catalog,
                                   const flow::InterleavedFlow& u)
    : owned_(std::make_unique<MessageSelector>(catalog, u)),
      base_(owned_.get()) {}

ParallelSelector::ParallelSelector(const MessageSelector& base)
    : base_(&base) {}

ParallelSelector::SearchOutcome ParallelSelector::search_sharded(
    const SelectorConfig& config, bool maximal_only,
    util::ThreadPool& pool) const {
  OBS_SPAN("selection.parallel.search");
  const auto& candidates = base_->candidates();
  const InfoGainEngine& engine = base_->engine();
  const util::CancelToken cancel = config.cancel;  // shared state, cheap copy

  const std::vector<std::uint32_t> widths = candidate_widths(*base_);
  const std::vector<ShardSeed> seeds = shard_seeds(*base_, config);
  OBS_COUNT("selection.parallel.seeds", seeds.size());

  // Resume: validate that the checkpoint describes *this* search, then
  // preload the running best, the emitted-combination counter and the
  // memo, and skip the shards the previous run completed.
  std::size_t start_seed = 0;
  Best overall;
  std::size_t emitted_start = 0;
  if (config.resume_from) {
    const SearchCheckpoint& ck = *config.resume_from;
    if (ck.fingerprint !=
            search_fingerprint(*base_, config, maximal_only) ||
        ck.seeds_total != seeds.size())
      throw std::runtime_error(
          "ParallelSelector: checkpoint does not match this search "
          "(different spec, candidates, buffer width, mode or cap)");
    start_seed = static_cast<std::size_t>(ck.next_seed);
    emitted_start = static_cast<std::size_t>(ck.emitted);
    if (ck.best_valid)
      overall.offer(std::bit_cast<double>(ck.best_gain_bits),
                    ck.best_messages, ck.best_width);
    memo_.restore(ck.memo);
    OBS_COUNT("resilience.resumes", 1);
  }

  std::atomic<std::size_t> emitted{emitted_start};

  const SeedWalker walker{candidates, widths, config.buffer_width,
                          maximal_only};
  const bool compiled = config.kernel == flow::KernelMode::kCompiled;
  const auto run_seed = [&](const ShardSeed& seed, Best& best,
                            bool& stopped) {
    // Compiled Step-2 hot loop: a per-shard GainCursor keeps the exact
    // left-to-right prefix sums of the walk, so each emission scores in
    // O(1) — the very summation info_gain(current) would run, not re-run
    // from scratch, hence bit-identical champions.
    GainCursor cursor(engine);
    const bool complete = walker.run(
        seed, [&] { return !cancel.cancelled(); },
        [&](const std::vector<flow::MessageId>& current,
            std::uint32_t width) {
          // Same cap semantics as the serial enumerator: only combinations
          // that pass the maximality filter count, and emission number
          // max_combinations + 1 throws.
          if (emitted.fetch_add(1, std::memory_order_relaxed) >=
              config.max_combinations)
            throw std::length_error(
                "enumerate_combinations: result cap exceeded; use "
                "maximal/greedy enumeration for large message sets");
          best.offer(compiled ? cursor.gain() : engine.info_gain(current),
                     current, width);
          return true;
        },
        [&](std::size_t i) {
          if (compiled) cursor.push(candidates[i]);
        },
        [&] {
          if (compiled) cursor.pop();
        });
    if (!complete) stopped = true;
  };

  const auto write_checkpoint = [&](std::size_t next_seed) {
    OBS_SPAN("resilience.checkpoint.write");
    SearchCheckpoint ck;
    ck.spec_path = config.checkpoint_spec_path;
    ck.instances = config.checkpoint_instances;
    ck.fingerprint = search_fingerprint(*base_, config, maximal_only);
    ck.buffer_width = config.buffer_width;
    ck.mode = static_cast<std::uint32_t>(config.mode);
    ck.packing = config.packing;
    ck.max_combinations = config.max_combinations;
    const flow::InterleaveOptions& iopt = base_->interleaving().options();
    ck.symmetry_reduction = iopt.symmetry_reduction;
    ck.max_nodes = iopt.max_nodes;
    ck.seeds_total = seeds.size();
    ck.next_seed = next_seed;
    ck.emitted = emitted.load(std::memory_order_relaxed);
    ck.best_valid = overall.valid;
    if (overall.valid) {
      ck.best_gain_bits = std::bit_cast<std::uint64_t>(overall.gain);
      ck.best_width = overall.combo.width;
      ck.best_messages = overall.combo.messages;
    }
    ck.memo = memo_.entries();
    const util::Status st = save_checkpoint(config.checkpoint_path, ck);
    if (!st.ok())
      throw std::runtime_error("ParallelSelector: cannot write checkpoint: " +
                               st.error().to_string());
    OBS_COUNT("resilience.checkpoints.written", 1);
  };

  // Dispatch in waves. A wave is a barrier: once every shard in it has
  // finished, its champions are merged in ascending seed order and the
  // boundary is a legal checkpoint. Without checkpointing or a shard
  // budget the single wave covers all remaining seeds — identical
  // scheduling to the pre-resilience engine.
  const bool waved =
      !config.checkpoint_path.empty() || config.shard_budget > 0;
  const std::size_t wave =
      waved ? std::max<std::size_t>(1, config.checkpoint_interval)
            : seeds.size();

  std::size_t completed = start_seed;  // seeds fully explored (prefix)
  std::size_t s = start_seed;
  bool stopped_early = false;
  std::vector<Best> tail;  // champions of cancelled, part-explored shards

  while (s < seeds.size()) {
    if (cancel.cancelled()) {
      stopped_early = true;
      break;
    }
    if (config.shard_budget > 0 &&
        s - start_seed >= config.shard_budget) {
      stopped_early = true;
      break;
    }
    std::size_t wave_end = std::min(seeds.size(), s + wave);
    if (config.shard_budget > 0)
      wave_end = std::min(wave_end,
                          start_seed + config.shard_budget);

    const std::size_t len = wave_end - s;
    std::vector<Best> results(len);
    std::vector<std::uint8_t> done(len, 0);
    for (std::size_t t = 0; t < len; ++t) {
      pool.submit([&, t] {
        if (cancel.cancelled()) return;  // skipped shard: done stays 0
        bool stopped = false;
        run_seed(seeds[s + t], results[t], stopped);
        if (!stopped) done[t] = 1;
      });
    }
    pool.wait();

    bool wave_complete = true;
    for (std::size_t t = 0; t < len; ++t)
      if (!done[t]) wave_complete = false;

    if (wave_complete) {
      for (std::size_t t = 0; t < len; ++t) overall.offer(results[t]);
      s = wave_end;
      completed = wave_end;
      if (!config.checkpoint_path.empty()) write_checkpoint(completed);
    } else {
      // Cancelled mid-wave: the boundary checkpoint already on disk stays
      // authoritative. Completed shards still merge exactly; cancelled
      // shards contribute their (valid, exactly scored) champions to the
      // *returned* partial best only.
      for (std::size_t t = 0; t < len; ++t) {
        if (done[t]) {
          ++completed;
          overall.offer(results[t]);
        } else {
          tail.push_back(std::move(results[t]));
        }
      }
      stopped_early = true;
      break;
    }
  }
  OBS_COUNT("selection.combinations",
            emitted.load(std::memory_order_relaxed) - emitted_start);

  SearchOutcome out;
  out.partial = stopped_early;
  out.explored_fraction =
      seeds.empty() ? 1.0
                    : static_cast<double>(completed) /
                          static_cast<double>(seeds.size());
  if (stopped_early) OBS_COUNT("resilience.cancelled_searches", 1);
  for (const Best& b : tail) overall.offer(b);
  if (!overall.valid) {
    if (stopped_early) return out;  // empty partial result, not an error
    throw std::runtime_error(
        "MessageSelector: no message fits the trace buffer");
  }
  out.valid = true;
  out.combo = std::move(overall.combo);
  return out;
}

SelectionResult ParallelSelector::select(const SelectorConfig& config,
                                         util::ThreadPool* pool) const {
  if (config.mode == SearchMode::kGreedy ||
      config.mode == SearchMode::kKnapsack) {
    // Greedy ascent and the knapsack DP are sequential by nature (each
    // step/row depends on the previous) and already near-linear; run them
    // on the serial path.
    SelectorConfig serial = config;
    serial.jobs = 1;
    return base_->select(serial);
  }
  if (config.mem_budget_mb > 0 &&
      base_->estimate_search_bytes(config) >
          static_cast<double>(config.mem_budget_mb) * (1u << 20)) {
    // Over the Step 2 memory budget: the serial path degrades to the
    // beam-limited search (MessageSelector::select applies the budget
    // check before its parallel routing, so this cannot bounce back here).
    SelectorConfig serial = config;
    serial.jobs = 1;
    return base_->select(serial);
  }

  std::optional<util::ThreadPool> local;
  if (pool == nullptr) {
    local.emplace(util::ThreadPool::resolve_jobs(config.jobs));
    pool = &*local;
  }
  SearchOutcome out = search_sharded(
      config, /*maximal_only=*/config.mode == SearchMode::kMaximal, *pool);
  if (!out.valid) {
    // Interrupted before any shard produced a champion: a well-formed
    // empty partial result (never a throw or a hang).
    SelectionResult result;
    result.buffer_width = config.buffer_width;
    result.partial = true;
    result.explored_fraction = out.explored_fraction;
    return result;
  }
  SelectionResult result =
      base_->finalize(std::move(out.combo), config, &memo_);
  result.partial = out.partial;
  result.explored_fraction = out.explored_fraction;
  return result;
}

std::size_t ParallelSelector::seed_count(const SelectorConfig& config) const {
  return shard_seeds(*base_, config).size();
}

bool ParallelSelector::memory_degraded(const SelectorConfig& config) const {
  return config.mem_budget_mb > 0 &&
         base_->estimate_search_bytes(config) >
             static_cast<double>(config.mem_budget_mb) * (1u << 20);
}

ParallelSelector::UnitOutcome ParallelSelector::run_unit(
    const SelectorConfig& config, std::size_t begin, std::size_t end) const {
  OBS_SPAN("selection.dist.unit");
  const bool maximal_only = config.mode == SearchMode::kMaximal;
  const std::vector<std::uint32_t> widths = candidate_widths(*base_);
  const std::vector<ShardSeed> seeds = shard_seeds(*base_, config);
  end = std::min(end, seeds.size());
  begin = std::min(begin, end);

  const InfoGainEngine& engine = base_->engine();
  const util::CancelToken cancel = config.cancel;
  const SeedWalker walker{base_->candidates(), widths, config.buffer_width,
                          maximal_only};

  const bool compiled = config.kernel == flow::KernelMode::kCompiled;
  UnitOutcome out;
  Best best;
  for (std::size_t s = begin; s < end; ++s) {
    // Fresh cursor per seed: the walker pushes each seed's prefix without
    // popping it at the end of the walk.
    GainCursor cursor(engine);
    const bool complete = walker.run(
        seeds[s], [&] { return !cancel.cancelled(); },
        [&](const std::vector<flow::MessageId>& current,
            std::uint32_t width) {
          ++out.emitted;
          // This range alone has crossed the global cap: no need to keep
          // walking, the coordinator must throw whatever the other units
          // report. The crossing emission stays counted so the sum the
          // coordinator checks is still a lower bound > cap.
          if (out.emitted > config.max_combinations) {
            out.cap_exceeded = true;
            return false;
          }
          best.offer(compiled ? cursor.gain() : engine.info_gain(current),
                     current, width);
          return true;
        },
        [&](std::size_t i) {
          if (compiled) cursor.push(base_->candidates()[i]);
        },
        [&] {
          if (compiled) cursor.pop();
        });
    if (!complete) {
      if (!out.cap_exceeded) out.stopped = true;
      break;
    }
  }
  out.valid = best.valid;
  out.gain = best.gain;
  out.combo = std::move(best.combo);
  return out;
}

SelectionResult ParallelSelector::finalize_distributed(
    bool valid, Combination combo, std::uint64_t emitted_total, bool partial,
    double explored_fraction, const SelectorConfig& config) const {
  if (emitted_total > config.max_combinations)
    throw std::length_error(
        "enumerate_combinations: result cap exceeded; use "
        "maximal/greedy enumeration for large message sets");
  if (!valid) {
    if (partial) {
      SelectionResult result;
      result.buffer_width = config.buffer_width;
      result.partial = true;
      result.explored_fraction = explored_fraction;
      return result;
    }
    throw std::runtime_error(
        "MessageSelector: no message fits the trace buffer");
  }
  SelectionResult result = base_->finalize(std::move(combo), config, &memo_);
  result.partial = partial;
  result.explored_fraction = explored_fraction;
  return result;
}

}  // namespace tracesel::selection
