#include "selection/work_unit.hpp"

#include <charconv>
#include <sstream>

namespace tracesel::selection {

namespace {

using util::ErrorCode;

/// Consumes the first line (without its '\n') from `text`, advancing it.
std::string_view take_line(std::string_view& text) {
  const std::size_t nl = text.find('\n');
  std::string_view line =
      nl == std::string_view::npos ? text : text.substr(0, nl);
  text.remove_prefix(nl == std::string_view::npos ? text.size() : nl + 1);
  return line;
}

/// Splits a line into whitespace-separated tokens.
std::vector<std::string_view> tokens_of(std::string_view line) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && line[i] == ' ') ++i;
    std::size_t j = i;
    while (j < line.size() && line[j] != ' ') ++j;
    if (j > i) out.push_back(line.substr(i, j - i));
    i = j;
  }
  return out;
}

bool parse_u64(std::string_view token, std::uint64_t& out) {
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), out);
  return ec == std::errc() && ptr == token.data() + token.size();
}

/// Validates "<tag> <version>\nunit <fields...>\n" and returns the unit
/// line's tokens (after "unit") plus the remaining checkpoint text.
util::Result<std::pair<std::vector<std::string_view>, std::string_view>>
parse_envelope(std::string_view text, std::string_view tag,
               std::uint32_t version, std::size_t min_fields) {
  using R =
      util::Result<std::pair<std::vector<std::string_view>, std::string_view>>;
  std::string_view rest = text;
  const auto header = tokens_of(take_line(rest));
  if (header.size() != 2 || header[0] != tag)
    return R::err(ErrorCode::kParse,
                  std::string("work unit: not a ") + std::string(tag) +
                      " envelope");
  std::uint64_t v = 0;
  if (!parse_u64(header[1], v))
    return R::err(ErrorCode::kParse, "work unit: unreadable version");
  if (v != version)
    return R::err(ErrorCode::kParse,
                  "work unit: version skew (got " + std::to_string(v) +
                      ", want " + std::to_string(version) + ")");
  auto unit = tokens_of(take_line(rest));
  if (unit.size() < 1 + min_fields || unit[0] != "unit")
    return R::err(ErrorCode::kParse, "work unit: malformed unit line");
  unit.erase(unit.begin());
  return R::ok({std::move(unit), rest});
}

}  // namespace

const char* to_string(DistFaultAction action) {
  switch (action) {
    case DistFaultAction::kNone: return "none";
    case DistFaultAction::kKillWorker: return "kill";
    case DistFaultAction::kHangWorker: return "hang";
    case DistFaultAction::kCorruptFrame: return "corrupt";
  }
  return "?";
}

util::Result<DistFaultAction> parse_fault_action(std::string_view token) {
  if (token == "none") return DistFaultAction::kNone;
  if (token == "kill") return DistFaultAction::kKillWorker;
  if (token == "hang") return DistFaultAction::kHangWorker;
  if (token == "corrupt") return DistFaultAction::kCorruptFrame;
  return util::Result<DistFaultAction>::err(
      ErrorCode::kParse,
      "work unit: unknown fault action '" + std::string(token) + "'");
}

std::string serialize_unit_request(const WorkUnitRequest& request) {
  std::ostringstream out;
  out << "tracesel-unit-request " << WorkUnitRequest::kVersion << "\n"
      << "unit " << request.unit_id << ' ' << request.seed_begin << ' '
      << request.seed_end << ' ' << request.heartbeat_ms << ' '
      << to_string(request.fault);
  // Trace context rides as optional trailing tokens (see header comment);
  // omitted entirely when tracing is off, so untraced wires are unchanged.
  if (request.trace_id != 0)
    out << ' ' << request.trace_id << ' ' << request.parent_span_id;
  out << "\n" << serialize_checkpoint(request.state);
  return out.str();
}

util::Result<WorkUnitRequest> parse_unit_request(std::string_view text) {
  using R = util::Result<WorkUnitRequest>;
  auto env = parse_envelope(text, "tracesel-unit-request",
                            WorkUnitRequest::kVersion, 5);
  if (!env.ok()) return R(env.error());
  const auto& [fields, rest] = env.value();

  WorkUnitRequest request;
  std::uint64_t hb = 0;
  if (!parse_u64(fields[0], request.unit_id) ||
      !parse_u64(fields[1], request.seed_begin) ||
      !parse_u64(fields[2], request.seed_end) || !parse_u64(fields[3], hb))
    return R::err(ErrorCode::kParse, "work unit: unreadable request fields");
  request.heartbeat_ms = static_cast<std::uint32_t>(hb);
  auto fault = parse_fault_action(fields[4]);
  if (!fault.ok()) return R(fault.error());
  request.fault = fault.value();
  if (fields.size() >= 7 &&
      (!parse_u64(fields[5], request.trace_id) ||
       !parse_u64(fields[6], request.parent_span_id)))
    return R::err(ErrorCode::kParse, "work unit: unreadable trace context");

  auto state = parse_checkpoint(rest);
  if (!state.ok()) return R(state.error());
  request.state = std::move(state).value();
  return request;
}

std::string serialize_unit_reply(const WorkUnitReply& reply) {
  std::ostringstream out;
  out << "tracesel-unit-reply " << WorkUnitReply::kVersion << "\n"
      << "unit " << reply.unit_id << ' ' << reply.seed_begin << ' '
      << reply.seed_end << ' ' << (reply.cap_exceeded ? 1 : 0) << "\n"
      << serialize_checkpoint(reply.state);
  return out.str();
}

util::Result<WorkUnitReply> parse_unit_reply(std::string_view text) {
  using R = util::Result<WorkUnitReply>;
  auto env = parse_envelope(text, "tracesel-unit-reply",
                            WorkUnitReply::kVersion, 4);
  if (!env.ok()) return R(env.error());
  const auto& [fields, rest] = env.value();

  WorkUnitReply reply;
  std::uint64_t cap = 0;
  if (!parse_u64(fields[0], reply.unit_id) ||
      !parse_u64(fields[1], reply.seed_begin) ||
      !parse_u64(fields[2], reply.seed_end) || !parse_u64(fields[3], cap) ||
      cap > 1)
    return R::err(ErrorCode::kParse, "work unit: unreadable reply fields");
  reply.cap_exceeded = cap == 1;

  auto state = parse_checkpoint(rest);
  if (!state.ok()) return R(state.error());
  reply.state = std::move(state).value();
  return reply;
}

util::Status validate_reply(const WorkUnitReply& reply,
                            const WorkUnitRequest& request) {
  // Identity checks catch swapped-shard payloads: a structurally valid
  // reply whose body answers a different unit or a different search.
  if (reply.unit_id != request.unit_id)
    return util::Status::err(
        ErrorCode::kCorruptCapture,
        "work unit: reply answers unit " + std::to_string(reply.unit_id) +
            ", expected " + std::to_string(request.unit_id));
  if (reply.seed_begin != request.seed_begin ||
      reply.seed_end != request.seed_end)
    return util::Status::err(
        ErrorCode::kCorruptCapture,
        "work unit: reply seed range [" + std::to_string(reply.seed_begin) +
            ", " + std::to_string(reply.seed_end) + ") does not match "
            "request [" + std::to_string(request.seed_begin) + ", " +
            std::to_string(request.seed_end) + ")");
  if (reply.state.fingerprint != request.state.fingerprint)
    return util::Status::err(
        ErrorCode::kCorruptCapture,
        "work unit: reply fingerprint does not match the requested search "
        "(swapped-shard payload)");
  if (reply.state.seeds_total != request.state.seeds_total)
    return util::Status::err(
        ErrorCode::kCorruptCapture,
        "work unit: reply seed universe does not match the request");
  return util::Status::success();
}

std::string serialize_heartbeat(std::uint64_t unit_id) {
  return "tracesel-heartbeat " + std::to_string(unit_id);
}

util::Result<std::uint64_t> parse_heartbeat(std::string_view text) {
  using R = util::Result<std::uint64_t>;
  const auto fields = tokens_of(text);
  std::uint64_t id = 0;
  if (fields.size() != 2 || fields[0] != "tracesel-heartbeat" ||
      !parse_u64(fields[1], id))
    return R::err(ErrorCode::kParse, "work unit: malformed heartbeat");
  return id;
}

std::string serialize_unit_error(std::uint64_t unit_id, util::ErrorCode code,
                                 std::string_view message) {
  std::string out = "tracesel-unit-error " + std::to_string(unit_id) + ' ' +
                    util::to_string(code) + ' ';
  out.append(message);
  return out;
}

util::Result<UnitError> parse_unit_error(std::string_view text) {
  using R = util::Result<UnitError>;
  std::string_view rest = text;
  const auto take_token = [&]() -> std::string_view {
    while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
    std::size_t j = 0;
    while (j < rest.size() && rest[j] != ' ') ++j;
    const std::string_view tok = rest.substr(0, j);
    rest.remove_prefix(j);
    return tok;
  };
  UnitError err;
  const std::string_view tag = take_token();
  const std::string_view id = take_token();
  const std::string_view code = take_token();
  if (tag != "tracesel-unit-error" || !parse_u64(id, err.unit_id) ||
      code.empty())
    return R::err(ErrorCode::kParse, "work unit: malformed error frame");
  err.code = std::string(code);
  if (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
  err.message = std::string(rest);
  return err;
}

std::string serialize_unit_telemetry(std::uint64_t unit_id,
                                     const obs::ProcessTelemetry& telemetry) {
  return "tracesel-unit-telemetry " + std::to_string(unit_id) + '\n' +
         obs::serialize_telemetry(telemetry);
}

util::Result<UnitTelemetry> parse_unit_telemetry(std::string_view text) {
  using R = util::Result<UnitTelemetry>;
  std::string_view rest = text;
  const auto head = tokens_of(take_line(rest));
  UnitTelemetry out;
  if (head.size() != 2 || head[0] != "tracesel-unit-telemetry" ||
      !parse_u64(head[1], out.unit_id))
    return R::err(ErrorCode::kParse,
                  "work unit: malformed telemetry frame header");
  auto telemetry = obs::parse_telemetry(rest);
  if (!telemetry.ok()) return R(telemetry.error());
  out.telemetry = std::move(telemetry).value();
  return out;
}

FrameKind classify_frame(std::string_view text) {
  const std::size_t sp = text.find_first_of(" \n");
  const std::string_view head =
      sp == std::string_view::npos ? text : text.substr(0, sp);
  if (head == "tracesel-unit-request") return FrameKind::kUnitRequest;
  if (head == "tracesel-unit-reply") return FrameKind::kUnitReply;
  if (head == "tracesel-heartbeat") return FrameKind::kHeartbeat;
  if (head == "tracesel-unit-error") return FrameKind::kUnitError;
  if (head == "tracesel-unit-telemetry") return FrameKind::kTelemetry;
  if (text == kShutdownFrame) return FrameKind::kShutdown;
  return FrameKind::kUnknown;
}

}  // namespace tracesel::selection
