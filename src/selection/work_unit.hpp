#pragma once
// Wire types of the distributed sharded search (DESIGN.md §12,
// docs/distributed.md).
//
// The coordinator/worker protocol promotes the PR-5 checkpoint
// serialization into a work-unit envelope: a request carries the full
// SearchCheckpoint describing the search identity (provenance, config,
// fingerprint) plus the [seed_begin, seed_end) range the worker must walk;
// the reply carries the same checkpoint structure with the unit's champion
// and emission count filled in. Reusing the checkpoint text format means
// the reply inherits its version + FNV-1a checksum envelope for free, so
// version skew and payload corruption surface as the same typed parse
// errors the resume path already produces — and the coordinator's response
// to any of them is a work-unit retry, never an abort.
//
// Frames on the pipe (see util/subprocess.hpp for the byte framing):
//   request    "tracesel-unit-request 1\nunit <id> <begin> <end> <hb> <fault>
//              [<trace_id> <parent_span>]\n" + serialize_checkpoint(state)
//   reply      "tracesel-unit-reply 1\nunit <id> <begin> <end> <cap>\n"
//              + serialize_checkpoint(state)   // champion + emitted of unit
//   heartbeat  "tracesel-heartbeat <id>"
//   error      "tracesel-unit-error <id> <code> <message...>"
//   telemetry  "tracesel-unit-telemetry <id>\n" + obs::serialize_telemetry
//   shutdown   "tracesel-shutdown"
//
// The trailing trace-context tokens ride the version-1 unit line because
// parse_envelope tolerates extra tokens: old coordinators never send them
// (workers see trace_id 0 = tracing off), old workers ignore them.
// Telemetry frames are advisory — a coordinator that cannot parse one
// counts it and moves on; the unit outcome travels in the reply alone.

#include <cstdint>
#include <string>
#include <string_view>

#include "selection/checkpoint.hpp"
#include "util/obs.hpp"
#include "util/result.hpp"

namespace tracesel::selection {

/// Fault directive a request may carry (DistFaultInjector schedules).
/// Honored by the worker so every failure path is exercised end-to-end:
/// a *real* process death, a *real* hang, a *real* corrupt payload.
enum class DistFaultAction : std::uint8_t {
  kNone = 0,
  kKillWorker,    ///< _Exit mid-unit (crash)
  kHangWorker,    ///< sleep without heartbeats (straggler)
  kCorruptFrame,  ///< flip a payload byte in the reply (corruption)
};

const char* to_string(DistFaultAction action);
util::Result<DistFaultAction> parse_fault_action(std::string_view token);

/// One unit of distributed work: walk seeds [seed_begin, seed_end).
struct WorkUnitRequest {
  static constexpr std::uint32_t kVersion = 1;

  std::uint64_t unit_id = 0;
  std::uint64_t seed_begin = 0;
  std::uint64_t seed_end = 0;
  std::uint32_t heartbeat_ms = 100;
  DistFaultAction fault = DistFaultAction::kNone;
  /// Distributed trace identity (obs::TraceContext): 0 = tracing off. A
  /// worker that receives a non-zero trace_id enables its obs layer and
  /// parents its unit span under `parent_span_id`.
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span_id = 0;
  /// Search identity + provenance; progress/best fields are ignored on the
  /// request side (the worker rebuilds the session from provenance and
  /// validates the fingerprint).
  SearchCheckpoint state;
};

/// A completed unit: `state` carries the unit's champion in best_* and the
/// unit's post-filter emission count in `emitted` (cap accounting at the
/// coordinator sums these). `cap_exceeded` mirrors
/// ParallelSelector::UnitOutcome (workers are never cancelled
/// cooperatively — a lost unit is killed and reassigned — so there is no
/// `stopped` on the wire).
struct WorkUnitReply {
  static constexpr std::uint32_t kVersion = 1;

  std::uint64_t unit_id = 0;
  std::uint64_t seed_begin = 0;
  std::uint64_t seed_end = 0;
  bool cap_exceeded = false;
  SearchCheckpoint state;
};

std::string serialize_unit_request(const WorkUnitRequest& request);
util::Result<WorkUnitRequest> parse_unit_request(std::string_view text);

std::string serialize_unit_reply(const WorkUnitReply& reply);
util::Result<WorkUnitReply> parse_unit_reply(std::string_view text);

/// Coordinator-side acceptance check: the reply must name the requested
/// unit and seed range and carry the requested search fingerprint —
/// a swapped-shard payload (a reply body grafted from a different unit or
/// a different search) is rejected with ErrorCode::kCorruptCapture and
/// retried like any other unit failure.
util::Status validate_reply(const WorkUnitReply& reply,
                            const WorkUnitRequest& request);

// --- small control frames ----------------------------------------------

std::string serialize_heartbeat(std::uint64_t unit_id);
/// Parses a heartbeat frame; returns the unit id.
util::Result<std::uint64_t> parse_heartbeat(std::string_view text);

std::string serialize_unit_error(std::uint64_t unit_id,
                                 util::ErrorCode code,
                                 std::string_view message);
struct UnitError {
  std::uint64_t unit_id = 0;
  std::string code;  ///< taxonomy name, e.g. "corrupt-capture"
  std::string message;
};
util::Result<UnitError> parse_unit_error(std::string_view text);

/// Worker telemetry shipped alongside (before) a unit reply: the worker's
/// obs::ProcessTelemetry for that unit, tagged with the unit id.
struct UnitTelemetry {
  std::uint64_t unit_id = 0;
  obs::ProcessTelemetry telemetry;
};
std::string serialize_unit_telemetry(std::uint64_t unit_id,
                                     const obs::ProcessTelemetry& telemetry);
util::Result<UnitTelemetry> parse_unit_telemetry(std::string_view text);

inline constexpr std::string_view kShutdownFrame = "tracesel-shutdown";

/// Frame discriminator (first token of the payload).
enum class FrameKind {
  kUnitRequest,
  kUnitReply,
  kHeartbeat,
  kUnitError,
  kTelemetry,
  kShutdown,
  kUnknown,
};
FrameKind classify_frame(std::string_view text);

}  // namespace tracesel::selection
