#pragma once
// Parallel Step 1/2: partitions the fitting-combination search across a
// util::ThreadPool and reduces the per-partition winners deterministically.
//
// Sharding. Every fitting combination, viewed as a sorted candidate-index
// sequence, is owned by exactly one task: combinations with fewer than D
// members are their own (leaf) task, and each fitting D-prefix owns the
// subtree of all combinations sharing those first D members (D = 3, or 2
// for very large alphabets to bound the task count). Tasks are submitted
// largest-first and stream enumeration, maximality filtering and scoring
// in one pass — nothing is materialized.
//
// Determinism. The Step 2 winner is the maximum under the strict total
// order (gain desc, width asc, messages lex asc) — the same tie-break the
// serial search applies. Each combination's gain is computed by the same
// InfoGainEngine call as in the serial path, so per-combination doubles
// are identical, and taking a maximum under a total order is independent
// of partitioning: the result is bit-identical to MessageSelector::select
// for every worker count. The max_combinations cap is enforced with a
// shared counter over emitted (post-filter) combinations — the same
// cardinality the serial search counts — so the overflow throw fires iff
// the serial search would throw.
//
// The per-combination gain memo is shared with Step 3 packing and across
// repeated select() calls on this selector (see gain_memo.hpp).

#include <cstdint>
#include <memory>
#include <vector>

#include "selection/gain_memo.hpp"
#include "selection/selector.hpp"
#include "util/thread_pool.hpp"

namespace tracesel::selection {

/// One shard of the search space: a fitting prefix of candidate indexes.
/// `subtree` tasks own every extension past `next`; leaf tasks own exactly
/// the prefix itself.
struct ShardSeed {
  std::vector<std::size_t> prefix;
  std::uint32_t width = 0;
  std::size_t next = 0;
  bool subtree = false;
};

/// The deterministic shard decomposition of the fitting-combination space
/// for `base`'s candidates under config.buffer_width. Depends only on the
/// candidate set, widths and budget, so every process that loads the same
/// spec computes the identical seed list — the distributed protocol
/// addresses work units as [begin, end) ranges into this list.
std::vector<ShardSeed> shard_seeds(const MessageSelector& base,
                                   const SelectorConfig& config);

class ParallelSelector {
 public:
  /// Owns a MessageSelector built over the interleaving.
  ParallelSelector(const flow::MessageCatalog& catalog,
                   const flow::InterleavedFlow& u);

  /// Borrows an existing selector (must outlive this object); reuses its
  /// already-built InfoGainEngine.
  explicit ParallelSelector(const MessageSelector& base);

  /// Step 1-3 with config.jobs workers. kExhaustive/kMaximal shard across
  /// the pool; kGreedy/kKnapsack are inherently sequential (near-linear /
  /// a row-dependent DP) and delegate to the serial path. Pass `pool` to
  /// reuse a caller-owned pool (config.jobs is ignored for sizing then);
  /// otherwise a pool of resolve_jobs(config.jobs) workers is created for
  /// the call.
  ///
  /// Resilience (DESIGN.md §11): config.cancel stops the search within one
  /// shard granule and yields a partial result; config.checkpoint_path
  /// persists the search state at every completed wave of
  /// config.checkpoint_interval shards; config.resume_from continues a
  /// checkpointed search bit-identically; config.shard_budget bounds the
  /// shards explored per call.
  SelectionResult select(const SelectorConfig& config = {},
                         util::ThreadPool* pool = nullptr) const;

  const MessageSelector& base() const { return *base_; }
  GainMemo& memo() const { return memo_; }

  // --- distributed building blocks (dist_coordinator / dist_worker) -----

  /// Result of exhaustively walking one contiguous seed range in-process:
  /// the range's champion plus the exact number of (post-filter) emissions
  /// it contributed to the global max_combinations cap.
  struct UnitOutcome {
    bool valid = false;  ///< at least one combination was scored
    double gain = -1.0;
    Combination combo;
    std::uint64_t emitted = 0;
    /// The range alone emitted more than config.max_combinations, so the
    /// global total necessarily exceeds the cap; the walk stopped early
    /// (emitted counts through the crossing emission).
    bool cap_exceeded = false;
    bool stopped = false;  ///< config.cancel fired mid-range
  };

  /// Number of shard seeds this search decomposes into (== the size of
  /// shard_seeds(base(), config)); the coordinator partitions [0, count)
  /// into work units.
  std::size_t seed_count(const SelectorConfig& config) const;

  /// True when config.mem_budget_mb would force select() onto the serial
  /// beam-limited path — a distributed run must degrade the same way to
  /// stay bit-identical.
  bool memory_degraded(const SelectorConfig& config) const;

  /// Walks seeds [begin, end) serially with the same enumeration,
  /// maximality filter and scoring as search_sharded — the worker-process
  /// entry point, also used by the coordinator to salvage lost units
  /// in-process. Ranges are clamped to the seed list.
  UnitOutcome run_unit(const SelectorConfig& config, std::size_t begin,
                       std::size_t end) const;

  /// Completes a distributed search from the merged champion: enforces the
  /// cap (throws the serial std::length_error iff emitted_total exceeds
  /// config.max_combinations), packs and scores the winner via the same
  /// finalize as the in-process paths, and stamps the partial fields.
  SelectionResult finalize_distributed(bool valid, Combination combo,
                                       std::uint64_t emitted_total,
                                       bool partial,
                                       double explored_fraction,
                                       const SelectorConfig& config) const;

 private:
  /// What search_sharded hands back: the champion of the explored region
  /// plus how much of the seed space that region covers.
  struct SearchOutcome {
    bool valid = false;  ///< at least one combination was scored
    Combination combo;
    bool partial = false;
    double explored_fraction = 1.0;
  };

  SearchOutcome search_sharded(const SelectorConfig& config,
                               bool maximal_only,
                               util::ThreadPool& pool) const;

  std::unique_ptr<MessageSelector> owned_;
  const MessageSelector* base_;
  mutable GainMemo memo_;
};

}  // namespace tracesel::selection
