#include "selection/selector.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "selection/gain_memo.hpp"
#include "selection/parallel_selector.hpp"
#include "util/obs.hpp"

namespace tracesel::selection {

MessageSelector::MessageSelector(const flow::MessageCatalog& catalog,
                                 const flow::InterleavedFlow& u)
    : catalog_(&catalog), u_(&u), engine_(u) {
  for (const auto& e : u.edges()) {
    if (std::find(candidates_.begin(), candidates_.end(), e.label.message) ==
        candidates_.end())
      candidates_.push_back(e.label.message);
  }
  std::sort(candidates_.begin(), candidates_.end());
}

Combination MessageSelector::search_exhaustive(const SelectorConfig& config,
                                               bool maximal_only) const {
  std::vector<Combination> combos;
  {
    OBS_SPAN("selection.step1.enumerate");
    combos = maximal_only
                 ? enumerate_maximal_combinations(*catalog_, candidates_,
                                                  config.buffer_width,
                                                  config.max_combinations)
                 : enumerate_combinations(*catalog_, candidates_,
                                          config.buffer_width,
                                          config.max_combinations);
  }
  OBS_COUNT("selection.combinations", combos.size());
  if (combos.empty())
    throw std::runtime_error(
        "MessageSelector: no message fits the trace buffer");

  OBS_SPAN("selection.step2.score");
  const Combination* best = nullptr;
  double best_gain = -1.0;
  for (const Combination& c : combos) {
    const double g = engine_.info_gain(c.messages, config.kernel);
    // Highest gain wins; ties prefer the narrower combination (more room
    // for Step 3 packing), then lexicographic for determinism.
    const bool better =
        g > best_gain ||
        (g == best_gain && best != nullptr &&
         (c.width < best->width ||
          (c.width == best->width && c.messages < best->messages)));
    if (best == nullptr || better) {
      best = &c;
      best_gain = g;
    }
  }
  return *best;
}

Combination MessageSelector::search_greedy(const SelectorConfig& config) const {
  OBS_SPAN("selection.search.greedy");
  Combination current;
  for (;;) {
    // Cooperative cancel between ascent steps: the combination built so
    // far is a valid (partial) greedy result.
    if (config.cancel.cancelled()) break;
    const flow::MessageId* best = nullptr;
    double best_gain = -1.0;
    std::uint32_t best_width = 0;
    for (const flow::MessageId& m : candidates_) {
      if (std::find(current.messages.begin(), current.messages.end(), m) !=
          current.messages.end())
        continue;
      const std::uint32_t w = catalog_->get(m).trace_width();
      if (current.width + w > config.buffer_width) continue;
      std::vector<flow::MessageId> trial = current.messages;
      trial.push_back(m);
      const double g = engine_.info_gain(trial, config.kernel);
      if (best == nullptr || g > best_gain ||
          (g == best_gain && w < best_width)) {
        best = &m;
        best_gain = g;
        best_width = w;
      }
    }
    if (best == nullptr) break;
    current.messages.push_back(*best);
    current.width += catalog_->get(*best).trace_width();
  }
  if (current.messages.empty()) {
    if (config.cancel.cancelled()) return current;  // empty partial
    throw std::runtime_error(
        "MessageSelector: no message fits the trace buffer");
  }
  std::sort(current.messages.begin(), current.messages.end());
  return current;
}

Combination MessageSelector::search_knapsack(
    const SelectorConfig& config) const {
  OBS_SPAN("selection.search.knapsack");
  // Full-table 0/1 knapsack: dp[i][w] = (best gain, width actually used)
  // over the first i candidates within capacity w. Ties in gain prefer the
  // narrower fill (leaves room for Step 3 packing), matching the
  // exhaustive tie-break.
  const std::size_t n = candidates_.size();
  const std::size_t wmax = config.buffer_width;
  struct Cell {
    double gain = 0.0;
    std::uint32_t used = 0;
  };
  std::vector<std::vector<Cell>> dp(n + 1,
                                    std::vector<Cell>(wmax + 1, Cell{}));

  for (std::size_t i = 1; i <= n; ++i) {
    // Cancel between DP rows; an incomplete table is unusable, so the
    // caller gets an empty partial combination.
    if (config.cancel.cancelled()) return Combination{};
    const std::uint32_t w = catalog_->get(candidates_[i - 1]).trace_width();
    const double v =
        engine_.message_contribution(candidates_[i - 1], config.kernel);
    for (std::size_t cap = 0; cap <= wmax; ++cap) {
      dp[i][cap] = dp[i - 1][cap];
      if (w <= cap) {
        const Cell with{dp[i - 1][cap - w].gain + v,
                        dp[i - 1][cap - w].used + w};
        if (with.gain > dp[i][cap].gain ||
            (with.gain == dp[i][cap].gain && with.used < dp[i][cap].used)) {
          dp[i][cap] = with;
        }
      }
    }
  }

  Combination best;
  std::size_t cap = wmax;
  for (std::size_t i = n; i > 0; --i) {
    // Item i-1 taken iff removing it explains the cell.
    const std::uint32_t w = catalog_->get(candidates_[i - 1]).trace_width();
    const Cell& cur = dp[i][cap];
    const Cell& without = dp[i - 1][cap];
    if (cur.gain == without.gain && cur.used == without.used) continue;
    best.messages.push_back(candidates_[i - 1]);
    best.width += w;
    cap -= w;
  }
  if (best.messages.empty()) {
    if (config.cancel.cancelled()) return best;  // empty partial
    throw std::runtime_error(
        "MessageSelector: no message fits the trace buffer");
  }
  std::sort(best.messages.begin(), best.messages.end());
  return best;
}

double MessageSelector::estimate_search_bytes(
    const SelectorConfig& config) const {
  // Number of fitting subsets via a counting knapsack DP over the candidate
  // widths — pure arithmetic on the candidate set, so every run of the same
  // spec reaches the same verdict (determinism of the budget decision).
  // Each materialized Combination costs roughly a vector header + a handful
  // of 4-byte ids; 64 bytes is the round, documented estimate.
  std::vector<double> dp(config.buffer_width + 1, 0.0);
  dp[0] = 1.0;
  for (flow::MessageId m : candidates_) {
    const std::uint32_t w = catalog_->get(m).trace_width();
    if (w == 0 || w > config.buffer_width) continue;
    for (std::uint32_t cap = config.buffer_width; cap >= w; --cap)
      dp[cap] += dp[cap - w];
  }
  double count = -1.0;  // exclude the empty set
  for (double c : dp) count += c;
  count = std::min(count, static_cast<double>(config.max_combinations));
  return std::max(count, 0.0) * 64.0;
}

Combination MessageSelector::search_beam(const SelectorConfig& config,
                                         std::size_t beam_width) const {
  OBS_SPAN("selection.search.beam");
  struct Entry {
    double gain = -1.0;
    Combination combo;
    std::size_t last = 0;  ///< index of the last candidate added
  };
  // The exhaustive search's strict total order, reused as the beam rank.
  const auto better = [](const Entry& a, const Entry& b) {
    if (a.gain != b.gain) return a.gain > b.gain;
    if (a.combo.width != b.combo.width) return a.combo.width < b.combo.width;
    return a.combo.messages < b.combo.messages;
  };

  const std::size_t n = candidates_.size();
  std::vector<std::uint32_t> widths(n);
  for (std::size_t i = 0; i < n; ++i)
    widths[i] = catalog_->get(candidates_[i]).trace_width();

  std::vector<Entry> beam;
  for (std::size_t i = 0; i < n; ++i) {
    if (widths[i] > config.buffer_width) continue;
    Entry e;
    e.combo.messages = {candidates_[i]};
    e.combo.width = widths[i];
    e.last = i;
    e.gain = engine_.info_gain(e.combo.messages, config.kernel);
    beam.push_back(std::move(e));
  }

  Entry best;
  bool have_best = false;
  while (!beam.empty()) {
    std::sort(beam.begin(), beam.end(), better);
    if (beam.size() > beam_width) beam.resize(beam_width);
    for (const Entry& e : beam) {
      if (!have_best || better(e, best)) {
        best = e;
        have_best = true;
      }
    }
    if (config.cancel.cancelled()) break;  // best-so-far is the answer
    // Level-synchronous expansion: children extend with strictly larger
    // candidate indices, so no combination is generated twice.
    std::vector<Entry> next;
    for (const Entry& e : beam) {
      for (std::size_t i = e.last + 1; i < n; ++i) {
        if (e.combo.width + widths[i] > config.buffer_width) continue;
        Entry c;
        c.combo.messages = e.combo.messages;
        c.combo.messages.push_back(candidates_[i]);
        c.combo.width = e.combo.width + widths[i];
        c.last = i;
        c.gain = engine_.info_gain(c.combo.messages, config.kernel);
        next.push_back(std::move(c));
      }
    }
    beam = std::move(next);
  }
  if (!have_best) {
    if (config.cancel.cancelled()) return Combination{};  // empty partial
    throw std::runtime_error(
        "MessageSelector: no message fits the trace buffer");
  }
  return std::move(best.combo);
}

SelectionResult MessageSelector::finalize(Combination combination,
                                          const SelectorConfig& config,
                                          GainMemo* memo) const {
  SelectionResult result;
  result.buffer_width = config.buffer_width;
  result.combination = std::move(combination);

  result.gain_unpacked =
      memo ? memo->gain(engine_, result.combination.messages, config.kernel)
           : engine_.info_gain(result.combination.messages, config.kernel);
  result.coverage_unpacked =
      flow_spec_coverage(*u_, result.combination.messages);
  result.used_width = result.combination.width;

  if (config.packing) {
    OBS_SPAN("selection.step3.packing");
    PackingResult packing =
        pack_leftover(*catalog_, engine_, result.combination,
                      config.buffer_width, candidates_, memo, config.kernel);
    OBS_COUNT("selection.packed", packing.packed.size());
    result.packed = std::move(packing.packed);
    result.used_width += packing.width_added;
    result.gain = packing.gain_after;
  } else {
    result.gain = result.gain_unpacked;
  }
  result.coverage = flow_spec_coverage(*u_, result.observable());
  return result;
}

SelectionResult MessageSelector::select(const SelectorConfig& config) const {
  OBS_SPAN("selection.select");
  const bool searchable = config.mode == SearchMode::kExhaustive ||
                          config.mode == SearchMode::kMaximal;

  // Memory budget first — and before the parallel routing, so the
  // ParallelSelector's over-budget delegation back to this serial path
  // lands on the beam and cannot bounce back (no routing recursion).
  if (searchable && config.mem_budget_mb > 0 &&
      estimate_search_bytes(config) >
          static_cast<double>(config.mem_budget_mb) * (1u << 20)) {
    // 64 beam slots per budgeted MiB: deterministic, and each slot is a
    // bounded Combination, so the beam respects the budget by orders of
    // magnitude.
    const std::size_t beam_width =
        std::clamp<std::size_t>(config.mem_budget_mb * 64, 16, 1u << 16);
    const std::string note =
        "step2: beam-limited search (beam " + std::to_string(beam_width) +
        ") under the " + std::to_string(config.mem_budget_mb) +
        " MiB memory budget";
    OBS_COUNT("resilience.degradations", 1);
    Combination combo = search_beam(config, beam_width);
    if (combo.messages.empty()) {  // cancelled before anything was scored
      SelectionResult r;
      r.buffer_width = config.buffer_width;
      r.partial = true;
      r.explored_fraction = 0.0;
      r.degradation = note;
      return r;
    }
    const bool cancelled = config.cancel.cancelled();
    SelectionResult result = finalize(std::move(combo), config, nullptr);
    result.degradation = note;
    if (cancelled) {
      result.partial = true;
      result.explored_fraction = 0.0;
    }
    return result;
  }

  // The exhaustive/maximal search parallelizes cleanly (the engine is
  // const after construction); jobs != 1 routes it through the parallel
  // engine, which produces bit-identical results for every worker count.
  // Any resilience feature routes there too (even at jobs == 1): the
  // sharded wave engine is what implements cancellation granularity,
  // checkpoints, resume and shard budgets.
  const bool resilient = config.cancel.valid() ||
                         !config.checkpoint_path.empty() ||
                         config.resume_from != nullptr ||
                         config.shard_budget > 0;
  if (searchable && (config.jobs != 1 || resilient)) {
    return ParallelSelector(*this).select(config);
  }

  Combination combination;
  switch (config.mode) {
    case SearchMode::kExhaustive:
      combination = search_exhaustive(config, /*maximal_only=*/false);
      break;
    case SearchMode::kMaximal:
      combination = search_exhaustive(config, /*maximal_only=*/true);
      break;
    case SearchMode::kGreedy:
      combination = search_greedy(config);
      break;
    case SearchMode::kKnapsack:
      combination = search_knapsack(config);
      break;
  }
  const bool cancelled = config.cancel.cancelled();
  if (combination.messages.empty()) {
    // Only the cancel-aware searches return empty (they throw otherwise):
    // a well-formed empty partial result.
    SelectionResult result;
    result.buffer_width = config.buffer_width;
    result.partial = true;
    result.explored_fraction = 0.0;
    return result;
  }
  SelectionResult result = finalize(std::move(combination), config, nullptr);
  if (cancelled) {
    result.partial = true;
    result.explored_fraction = 0.0;
  }
  return result;
}

SelectionResult MessageSelector::select_with_flow_constraint(
    const SelectorConfig& config) const {
  SelectionResult result = select(config);

  // Distinct participating flows of the interleaving.
  std::vector<const flow::Flow*> flows;
  for (const auto& inst : u_->instances()) {
    if (std::find(flows.begin(), flows.end(), inst.flow) == flows.end())
      flows.push_back(inst.flow);
  }

  auto represented = [&](const flow::Flow* f) {
    for (const flow::MessageId m : result.observable()) {
      if (f->uses_message(m)) return true;
    }
    return false;
  };

  for (const flow::Flow* f : flows) {
    if (represented(f)) continue;

    // Best message of the dark flow: highest contribution, then narrowest.
    const flow::MessageId* best = nullptr;
    for (const flow::MessageId& m : f->messages()) {
      if (catalog_->get(m).trace_width() > config.buffer_width) continue;
      if (best == nullptr ||
          engine_.message_contribution(m, config.kernel) >
              engine_.message_contribution(*best, config.kernel) ||
          (engine_.message_contribution(m, config.kernel) ==
               engine_.message_contribution(*best, config.kernel) &&
           catalog_->get(m).trace_width() <
               catalog_->get(*best).trace_width()))
        best = &m;
    }
    if (best == nullptr)
      throw std::runtime_error(
          "select_with_flow_constraint: flow '" + f->name() +
          "' has no message narrow enough for the buffer");
    const std::uint32_t need = catalog_->get(*best).trace_width();

    // Evict lowest-contribution messages whose flow keeps another
    // observable message, until the newcomer fits.
    // (Packed subgroups are dropped first: they are the cheapest evidence.)
    result.packed.clear();
    result.used_width = result.combination.width;
    while (config.buffer_width - result.combination.width < need) {
      const auto obs = result.observable();
      flow::MessageId victim = flow::kInvalidMessage;
      double victim_gain = 0.0;
      for (const flow::MessageId m : result.combination.messages) {
        // Does m's flow keep representation without m?
        bool keeps = false;
        for (const flow::Flow* g : flows) {
          if (!g->uses_message(m)) continue;
          for (const flow::MessageId other : obs) {
            if (other != m && g->uses_message(other)) keeps = true;
          }
        }
        if (!keeps) continue;
        const double g = engine_.message_contribution(m, config.kernel);
        if (victim == flow::kInvalidMessage || g < victim_gain) {
          victim = m;
          victim_gain = g;
        }
      }
      if (victim == flow::kInvalidMessage)
        throw std::runtime_error(
            "select_with_flow_constraint: cannot make room for flow '" +
            f->name() + "' without darkening another flow");
      result.combination.messages.erase(
          std::find(result.combination.messages.begin(),
                    result.combination.messages.end(), victim));
      result.combination.width -= catalog_->get(victim).trace_width();
      result.used_width = result.combination.width;
    }
    result.combination.messages.push_back(*best);
    result.combination.width += need;
    result.used_width = result.combination.width;
    std::sort(result.combination.messages.begin(),
              result.combination.messages.end());
  }

  // Re-run Step 3 over the repaired combination and refresh the metrics.
  result.gain_unpacked =
      engine_.info_gain(result.combination.messages, config.kernel);
  result.coverage_unpacked =
      flow_spec_coverage(*u_, result.combination.messages);
  if (config.packing) {
    PackingResult packing =
        pack_leftover(*catalog_, engine_, result.combination,
                      config.buffer_width, candidates_, nullptr,
                      config.kernel);
    result.packed = std::move(packing.packed);
    result.used_width = result.combination.width + packing.width_added;
    result.gain = packing.gain_after;
  } else {
    result.packed.clear();
    result.gain = result.gain_unpacked;
  }
  result.coverage = flow_spec_coverage(*u_, result.observable());
  return result;
}

}  // namespace tracesel::selection
