#pragma once
// Worker-process side of the distributed sharded search (DESIGN.md §12,
// docs/distributed.md).
//
// A worker is the existing CLI re-invoked as `tracesel --worker`: it reads
// work-unit request frames from stdin, rebuilds the search from the
// checkpoint provenance carried in each request (caching the rebuilt
// engine by search fingerprint so a stream of units for one search parses
// the spec once), walks the unit's seed range with
// ParallelSelector::run_unit, and writes the reply frame to stdout. While
// a unit computes, a heartbeat thread emits heartbeat frames so the
// coordinator can tell "slow but alive" from "hung".
//
// Layering: the worker loop lives in selection/ and cannot depend on the
// tracesel facade (which depends on selection/), so session rebuilding is
// injected as a WorkerEngineFactory — the CLI passes
// Session::worker_engine.

#include <functional>
#include <memory>

#include "selection/checkpoint.hpp"
#include "selection/parallel_selector.hpp"
#include "selection/selector.hpp"
#include "util/result.hpp"

namespace tracesel::selection {

/// A rebuilt search engine for one checkpoint's provenance. `keepalive`
/// owns whatever object graph backs `selector` (e.g. a Session).
struct WorkerEngine {
  std::shared_ptr<void> keepalive;
  std::shared_ptr<const ParallelSelector> selector;
  SelectorConfig config;
};

/// Rebuilds a WorkerEngine from a request's checkpoint (provenance +
/// search identity). A typed error when the provenance cannot be loaded.
using WorkerEngineFactory =
    std::function<util::Result<WorkerEngine>(const SearchCheckpoint&)>;

/// The worker main loop: frames in on `in_fd`, frames out on `out_fd`.
/// Returns the process exit code — 0 on orderly shutdown (shutdown frame
/// or EOF from the coordinator), 2 on an unrecoverable stream error.
/// Per-unit failures (bad provenance, fingerprint mismatch, parse errors)
/// are reported as unit-error frames and do NOT terminate the loop.
int run_worker(int in_fd, int out_fd, const WorkerEngineFactory& factory);

}  // namespace tracesel::selection
