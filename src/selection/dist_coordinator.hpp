#pragma once
// Coordinator side of the fault-tolerant distributed sharded search
// (DESIGN.md §12, docs/distributed.md).
//
// The coordinator partitions the D-prefix seed space (shard_seeds) into
// contiguous work units, farms them to worker processes over pipes
// (work_unit.hpp frames), and merges the unit champions with the same
// strict total order the in-process search uses — so the final selection
// is bit-identical to serial for every worker count and every failure
// schedule. Robustness model:
//
//   worker crash / EOF      kill + reap + respawn the slot, retry the unit
//   hang / straggler        no frame for unit_deadline_ms -> SIGKILL,
//                           respawn, reassign the unit
//   corrupt reply           checksum/version/identity failure -> typed
//                           error, retry the unit (worker stays up)
//   retries exhausted       the unit is salvaged in-process (run_unit),
//                           so termination and bit-identity hold under
//                           every schedule
//   no spawnable workers    graceful degradation: every unit salvaged
//                           in-process
//
// Retries are spaced by util::Backoff with the unit id as the jitter
// stream, so a seeded schedule reproduces exactly. DistFaultInjector
// (the soc::FaultInjector idiom lifted to processes) decides per
// (unit, attempt) whether the request carries a kill/hang/corrupt
// directive the worker honors — making every path above property-testable
// with real process deaths.

#include <cstdint>
#include <string>
#include <vector>

#include "selection/parallel_selector.hpp"
#include "selection/selector.hpp"
#include "selection/work_unit.hpp"
#include "util/backoff.hpp"
#include "util/rng.hpp"

namespace tracesel::selection {

/// Seeded schedule of injected worker faults (probability per unit
/// dispatch, decided independently for every (unit, attempt) pair so
/// retries of a faulted unit can succeed).
struct DistFaultProfile {
  double kill_rate = 0.0;     ///< worker _Exits mid-unit
  double hang_rate = 0.0;     ///< worker sleeps, no heartbeats
  double corrupt_rate = 0.0;  ///< reply payload byte flipped
  std::uint64_t seed = 1;

  bool enabled() const {
    return kill_rate > 0.0 || hang_rate > 0.0 || corrupt_rate > 0.0;
  }
};

class DistFaultInjector {
 public:
  explicit DistFaultInjector(DistFaultProfile profile) : profile_(profile) {}

  /// The fault (if any) to inject into dispatch `attempt` of `unit_id`.
  /// Pure function of (profile.seed, unit_id, attempt).
  DistFaultAction action(std::uint64_t unit_id, std::uint32_t attempt) const;

  const DistFaultProfile& profile() const { return profile_; }

 private:
  DistFaultProfile profile_;
};

struct DistConfig {
  /// Worker process count; < 2 degrades to in-process execution at the
  /// Session level (a single worker is still exercised by tests).
  std::size_t workers = 0;
  /// Command line for one worker, e.g. {"/path/to/tracesel", "--worker"}.
  /// Empty -> in-process degradation.
  std::vector<std::string> worker_argv;
  /// Seeds per work unit; 0 = auto (~8 units per worker for balance).
  std::size_t unit_size = 0;
  /// Inactivity deadline: a unit whose worker has produced no frame (reply
  /// or heartbeat) for this long is declared lost and reassigned.
  std::uint32_t unit_deadline_ms = 30000;
  /// Heartbeat period workers are asked to emit at while computing.
  std::uint32_t heartbeat_ms = 100;
  /// Retries per unit before the coordinator salvages it in-process.
  std::uint32_t max_retries = 3;
  /// Retry spacing; the unit id is the jitter stream.
  util::BackoffPolicy backoff{20, 2.0, 1000, 0.25, 1};
  DistFaultProfile faults;
};

/// Aggregate failure/retry accounting of one distributed run (also
/// mirrored into obs counters "dist.*").
struct DistStats {
  std::uint64_t units_total = 0;
  std::uint64_t units_dispatched = 0;  ///< requests written (incl. retries)
  std::uint64_t units_completed = 0;   ///< replies accepted from workers
  std::uint64_t units_retried = 0;     ///< failures that went back to queue
  std::uint64_t units_reassigned = 0;  ///< deadline-expired stragglers
  std::uint64_t units_salvaged = 0;    ///< ran in-process after exhaustion
  std::uint64_t workers_spawned = 0;
  std::uint64_t workers_crashed = 0;   ///< EOF/death/stream corruption
  std::uint64_t workers_killed = 0;    ///< coordinator-initiated SIGKILLs
  std::uint64_t faults_injected = 0;
};

class DistCoordinator {
 public:
  DistCoordinator(const ParallelSelector& selector, DistConfig config);

  /// Runs the full distributed search for `config` (the same SelectorConfig
  /// the in-process paths take; checkpoint_path is not supported here and
  /// is ignored). Blocks until every unit is merged, the cap overflows
  /// (throws the serial std::length_error) or config.cancel fires (partial
  /// result). Bit-identical to MessageSelector::select for every worker
  /// count and fault schedule.
  SelectionResult run(const SelectorConfig& config);

  /// Accounting of the last run().
  const DistStats& stats() const { return stats_; }

 private:
  const ParallelSelector& selector_;
  DistConfig dist_;
  DistStats stats_;
};

}  // namespace tracesel::selection
