#include "selection/dist_coordinator.hpp"

#include <errno.h>
#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "flow/interleaved_flow.hpp"
#include "selection/checkpoint.hpp"
#include "util/log.hpp"
#include "util/obs.hpp"
#include "util/subprocess.hpp"

namespace tracesel::selection {

namespace {

using Clock = std::chrono::steady_clock;
using util::ErrorCode;

std::uint64_t splitmix(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Merged champion under the serial search's strict total order (gain
/// desc, width asc, messages lex asc) — order-independent maximum.
struct Champion {
  bool valid = false;
  double gain = -1.0;
  Combination combo;

  void offer(double g, const std::vector<flow::MessageId>& messages,
             std::uint32_t width) {
    const bool better =
        !valid || g > gain ||
        (g == gain &&
         (width < combo.width ||
          (width == combo.width && messages < combo.messages)));
    if (better) {
      valid = true;
      gain = g;
      combo.messages = messages;
      combo.width = width;
    }
  }
};

/// One work unit's lifecycle at the coordinator.
struct UnitState {
  std::uint64_t id = 0;
  std::size_t begin = 0;
  std::size_t end = 0;
  std::uint32_t attempts = 0;  ///< dispatches so far (incl. in-flight)
  bool running = false;
  bool done = false;
  Clock::time_point not_before;  ///< backoff gate for the next dispatch
  util::Backoff backoff;

  // accepted result
  bool valid = false;
  double gain = -1.0;
  Combination combo;
  std::uint64_t emitted = 0;
  bool cap_exceeded = false;

  UnitState(std::uint64_t id_, std::size_t begin_, std::size_t end_,
            const util::BackoffPolicy& policy)
      : id(id_), begin(begin_), end(end_),
        not_before(Clock::now()), backoff(policy, id_) {}
};

/// One worker process slot.
struct WorkerSlot {
  util::Subprocess proc;
  util::FrameReader reader;
  bool alive = false;
  bool dead_forever = false;  ///< respawn budget exhausted / unspawnable
  std::size_t respawns = 0;
  std::ptrdiff_t unit = -1;  ///< index into units; -1 when idle
  WorkUnitRequest request;   ///< outstanding request (valid iff unit >= 0)
  Clock::time_point last_activity;
  Clock::time_point assigned_at;
};

std::uint32_t elapsed_ms(Clock::time_point since) {
  return static_cast<std::uint32_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                            since)
          .count());
}

}  // namespace

DistFaultAction DistFaultInjector::action(std::uint64_t unit_id,
                                          std::uint32_t attempt) const {
  if (!profile_.enabled()) return DistFaultAction::kNone;
  util::Rng rng(splitmix(splitmix(profile_.seed ^ (unit_id * 0x9E3779B9ull)) +
                         attempt));
  const double u = rng.unit();
  if (u < profile_.kill_rate) return DistFaultAction::kKillWorker;
  if (u < profile_.kill_rate + profile_.hang_rate)
    return DistFaultAction::kHangWorker;
  if (u < profile_.kill_rate + profile_.hang_rate + profile_.corrupt_rate)
    return DistFaultAction::kCorruptFrame;
  return DistFaultAction::kNone;
}

DistCoordinator::DistCoordinator(const ParallelSelector& selector,
                                 DistConfig config)
    : selector_(selector), dist_(std::move(config)) {}

SelectionResult DistCoordinator::run(const SelectorConfig& config) {
  OBS_SPAN("selection.dist.run");
  util::ignore_sigpipe();
  stats_ = DistStats{};

  // Distributed tracing: every dispatched unit carries this process's
  // trace id and the id of the span enclosing this call, so worker unit
  // spans parent under the coordinator's run span in the merged trace.
  std::uint64_t trace_id = 0;
  std::uint64_t root_span = 0;
  if (obs::enabled()) {
    trace_id = obs::ensure_trace_context().trace_id;
    root_span = obs::current_span_id();
  }

  const bool maximal_only = config.mode == SearchMode::kMaximal;
  const std::size_t seeds_total = selector_.seed_count(config);

  // The request template: the search identity + provenance every unit
  // carries (reusing the checkpoint serialization and with it the
  // version + checksum envelope).
  SearchCheckpoint tmpl;
  tmpl.spec_path = config.checkpoint_spec_path;
  tmpl.instances = config.checkpoint_instances;
  tmpl.fingerprint =
      search_fingerprint(selector_.base(), config, maximal_only);
  tmpl.buffer_width = config.buffer_width;
  tmpl.mode = static_cast<std::uint32_t>(config.mode);
  tmpl.packing = config.packing;
  tmpl.max_combinations = config.max_combinations;
  const flow::InterleaveOptions& iopt =
      selector_.base().interleaving().options();
  tmpl.symmetry_reduction = iopt.symmetry_reduction;
  tmpl.max_nodes = iopt.max_nodes;
  tmpl.seeds_total = seeds_total;

  // Partition the seed space into contiguous units. Auto-sizing aims for
  // ~8 units per worker: fine enough to rebalance around a lost worker,
  // coarse enough that framing overhead stays negligible.
  const std::size_t workers = std::max<std::size_t>(1, dist_.workers);
  std::size_t unit_size = dist_.unit_size;
  if (unit_size == 0)
    unit_size = std::max<std::size_t>(1, seeds_total / (workers * 8));
  std::vector<UnitState> units;
  for (std::size_t begin = 0; begin < seeds_total; begin += unit_size) {
    const std::size_t end = std::min(seeds_total, begin + unit_size);
    units.emplace_back(units.size(), begin, end, dist_.backoff);
  }
  stats_.units_total = units.size();
  OBS_COUNT("dist.units.total", units.size());

  const DistFaultInjector injector(dist_.faults);
  const util::CancelToken cancel = config.cancel;
  const std::size_t respawn_budget =
      std::max<std::size_t>(4, dist_.max_retries + 1);

  std::size_t done_count = 0;
  bool cancelled = false;

  // Salvage: run a lost unit in-process with the exact same enumerator the
  // workers use. This is both the retry-exhaustion backstop and the
  // graceful-degradation path — it guarantees termination and
  // bit-identity under every failure schedule.
  const auto salvage = [&](UnitState& unit) {
    OBS_COUNT("dist.units.salvaged", 1);
    ++stats_.units_salvaged;
    const ParallelSelector::UnitOutcome out =
        selector_.run_unit(config, unit.begin, unit.end);
    if (out.stopped) {
      cancelled = true;  // cancel fired mid-salvage; unit stays incomplete
      return;
    }
    unit.valid = out.valid;
    unit.gain = out.gain;
    unit.combo = out.combo;
    unit.emitted = out.emitted;
    unit.cap_exceeded = out.cap_exceeded;
    unit.done = true;
    unit.running = false;
    ++done_count;
  };

  // A unit dispatch failed (crash, hang, corrupt reply, typed error).
  // Back off and retry until the budget runs out, then salvage.
  const auto fail_unit = [&](std::size_t unit_index) {
    UnitState& unit = units[unit_index];
    unit.running = false;
    if (unit.done) return;
    if (unit.attempts > dist_.max_retries) {
      salvage(unit);
      return;
    }
    OBS_COUNT("dist.units.retried", 1);
    ++stats_.units_retried;
    unit.not_before = Clock::now() + unit.backoff.next();
  };

  std::vector<WorkerSlot> slots(std::min<std::size_t>(workers, units.size()));

  const auto spawn_slot = [&](WorkerSlot& slot) -> bool {
    if (slot.dead_forever) return false;
    if (dist_.worker_argv.empty() || slot.respawns >= respawn_budget) {
      slot.dead_forever = true;
      return false;
    }
    ++slot.respawns;
    auto spawned = util::Subprocess::spawn(dist_.worker_argv);
    if (!spawned.ok()) {
      util::Log(util::LogLevel::kWarn)
          << "dist: cannot spawn worker: " << spawned.error().to_string();
      slot.dead_forever = true;
      return false;
    }
    slot.proc = std::move(spawned).value();
    slot.reader = util::FrameReader();
    slot.alive = true;
    slot.unit = -1;
    slot.last_activity = Clock::now();
    OBS_COUNT("dist.workers.spawned", 1);
    ++stats_.workers_spawned;
    return true;
  };

  // The slot's worker is gone (crash, EOF, stream corruption) or must be
  // killed (straggler). Reassigns its unit and respawns the slot.
  const auto retire_slot = [&](WorkerSlot& slot, bool coordinator_kill) {
    if (slot.alive) {
      slot.proc.kill_hard();
      slot.proc.wait();
      slot.alive = false;
      if (coordinator_kill) {
        OBS_COUNT("dist.workers.killed", 1);
        ++stats_.workers_killed;
      } else {
        OBS_COUNT("dist.workers.crashed", 1);
        ++stats_.workers_crashed;
      }
    }
    if (slot.unit >= 0) {
      const std::size_t unit_index = static_cast<std::size_t>(slot.unit);
      slot.unit = -1;
      fail_unit(unit_index);
    }
    spawn_slot(slot);
  };

  for (WorkerSlot& slot : slots) spawn_slot(slot);

  const auto all_dead = [&] {
    for (const WorkerSlot& slot : slots)
      if (!slot.dead_forever) return false;
    return true;
  };

  const auto dispatch = [&](WorkerSlot& slot, std::size_t unit_index) {
    UnitState& unit = units[unit_index];
    WorkUnitRequest request;
    request.unit_id = unit.id;
    request.seed_begin = unit.begin;
    request.seed_end = unit.end;
    request.heartbeat_ms = dist_.heartbeat_ms;
    request.fault = injector.action(unit.id, unit.attempts);
    request.trace_id = trace_id;
    request.parent_span_id = root_span;
    if (request.fault != DistFaultAction::kNone) {
      OBS_COUNT("dist.faults.injected", 1);
      ++stats_.faults_injected;
    }
    request.state = tmpl;
    ++unit.attempts;
    unit.running = true;
    slot.request = request;
    slot.unit = static_cast<std::ptrdiff_t>(unit_index);
    slot.last_activity = Clock::now();
    slot.assigned_at = slot.last_activity;
    OBS_COUNT("dist.units.dispatched", 1);
    ++stats_.units_dispatched;
    const std::string frame =
        util::encode_frame(serialize_unit_request(request));
    if (!slot.proc.write_all(frame).ok()) {
      retire_slot(slot, /*coordinator_kill=*/false);
    }
  };

  const auto accept_reply = [&](WorkerSlot& slot, const WorkUnitReply& reply,
                                const util::Status& validity) {
    if (slot.unit < 0) return;  // stale frame; nothing outstanding
    const std::size_t unit_index = static_cast<std::size_t>(slot.unit);
    slot.unit = -1;
    UnitState& unit = units[unit_index];
    if (!validity.ok()) {
      util::Log(util::LogLevel::kWarn)
          << "dist: rejecting reply for unit " << unit.id << ": "
          << validity.error().to_string();
      fail_unit(unit_index);
      return;
    }
    if (unit.done) return;  // duplicate (should not happen; be safe)
    unit.valid = reply.state.best_valid;
    unit.gain = std::bit_cast<double>(reply.state.best_gain_bits);
    unit.combo.width = reply.state.best_width;
    unit.combo.messages = reply.state.best_messages;
    unit.emitted = reply.state.emitted;
    unit.cap_exceeded = reply.cap_exceeded;
    unit.done = true;
    unit.running = false;
    ++done_count;
    OBS_COUNT("dist.units.completed", 1);
    ++stats_.units_completed;
    OBS_HIST("dist.unit.latency_ms", elapsed_ms(slot.assigned_at));
  };

  // Drains every complete frame buffered for the slot. False when the
  // stream is corrupt (caller retires the slot).
  const auto drain_frames = [&](WorkerSlot& slot) -> bool {
    for (;;) {
      std::string payload;
      switch (slot.reader.next(payload)) {
        case util::FrameReader::State::kNeedMore:
          return true;
        case util::FrameReader::State::kCorrupt:
          util::Log(util::LogLevel::kWarn)
              << "dist: worker stream corrupt: "
              << slot.reader.corrupt_reason();
          return false;
        case util::FrameReader::State::kFrame:
          break;
      }
      slot.last_activity = Clock::now();
      switch (classify_frame(payload)) {
        case FrameKind::kHeartbeat:
          OBS_COUNT("dist.heartbeats", 1);
          break;
        case FrameKind::kUnitReply: {
          auto reply = parse_unit_reply(payload);
          if (!reply.ok()) {
            // A structurally broken reply (envelope checksum, version
            // skew): typed failure, retry the outstanding unit. The
            // worker itself is still healthy and framed correctly.
            util::Log(util::LogLevel::kWarn)
                << "dist: corrupt unit reply: " << reply.error().to_string();
            if (slot.unit >= 0) {
              const std::size_t unit_index =
                  static_cast<std::size_t>(slot.unit);
              slot.unit = -1;
              fail_unit(unit_index);
            }
            break;
          }
          accept_reply(slot, reply.value(),
                       validate_reply(reply.value(), slot.request));
          break;
        }
        case FrameKind::kTelemetry: {
          // Advisory: a worker's per-unit metrics + spans for the merged
          // trace. A frame we cannot parse (skewed or damaged) is counted
          // and dropped — the unit outcome travels in the reply alone.
          auto telemetry = parse_unit_telemetry(payload);
          if (telemetry.ok()) {
            obs::adopt_remote_telemetry(
                std::move(telemetry).value().telemetry);
            OBS_COUNT("dist.telemetry.frames", 1);
          } else {
            util::Log(util::LogLevel::kWarn)
                << "dist: dropping telemetry frame: "
                << telemetry.error().to_string();
            OBS_COUNT("dist.telemetry.rejected", 1);
          }
          break;
        }
        case FrameKind::kUnitError: {
          auto err = parse_unit_error(payload);
          util::Log(util::LogLevel::kWarn)
              << "dist: worker reported unit error: "
              << (err.ok() ? err.value().code + ": " + err.value().message
                           : std::string("unparseable error frame"));
          if (slot.unit >= 0) {
            const std::size_t unit_index = static_cast<std::size_t>(slot.unit);
            slot.unit = -1;
            fail_unit(unit_index);
          }
          break;
        }
        default:
          break;  // unknown frame kinds are ignored (forward compat)
      }
    }
  };

  // --- event loop -------------------------------------------------------
  char buf[64 * 1024];
  while (done_count < units.size()) {
    if (cancel.cancelled()) {
      cancelled = true;
      break;
    }
    // Any accepted unit crossing the cap makes the global total exceed it:
    // the serial search would have thrown, so stop and do the same.
    bool overflow = false;
    for (const UnitState& unit : units)
      if (unit.done && unit.cap_exceeded) overflow = true;
    if (overflow) break;

    if (all_dead()) {
      // Graceful degradation: no worker can be spawned (or every slot
      // exhausted its respawn budget). Finish everything in-process.
      for (UnitState& unit : units) {
        if (cancel.cancelled()) {
          cancelled = true;
          break;
        }
        if (!unit.done) salvage(unit);
        if (unit.done && unit.cap_exceeded) break;
      }
      break;
    }

    // Assign idle workers to runnable units (in unit order, so dispatch
    // order is deterministic given identical timing).
    const Clock::time_point now = Clock::now();
    for (WorkerSlot& slot : slots) {
      if (!slot.alive || slot.unit >= 0) continue;
      for (std::size_t u = 0; u < units.size(); ++u) {
        UnitState& unit = units[u];
        if (unit.done || unit.running || unit.not_before > now) continue;
        dispatch(slot, u);
        break;
      }
    }

    // Wait for worker output.
    std::vector<struct pollfd> fds;
    std::vector<std::size_t> fd_slot;
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (!slots[i].alive) continue;
      fds.push_back({slots[i].proc.stdout_fd(), POLLIN, 0});
      fd_slot.push_back(i);
    }
    if (!fds.empty()) {
      ::poll(fds.data(), fds.size(), 20);
    }

    for (std::size_t f = 0; f < fds.size(); ++f) {
      WorkerSlot& slot = slots[fd_slot[f]];
      if (!slot.alive) continue;
      if ((fds[f].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      bool eof = false;
      for (;;) {
        const ssize_t n = ::read(slot.proc.stdout_fd(), buf, sizeof(buf));
        if (n > 0) {
          slot.reader.feed(buf, static_cast<std::size_t>(n));
          continue;
        }
        if (n == 0) {
          eof = true;
        } else if (errno == EINTR) {
          continue;
        }
        break;  // EAGAIN (drained), EOF or error
      }
      if (!drain_frames(slot) || eof) {
        retire_slot(slot, /*coordinator_kill=*/false);
      }
    }

    // Straggler detection: no frame (reply or heartbeat) for the deadline
    // means the worker is hung or starved — SIGKILL and reassign.
    for (WorkerSlot& slot : slots) {
      if (!slot.alive || slot.unit < 0) continue;
      const std::uint32_t quiet = elapsed_ms(slot.last_activity);
      if (quiet > dist_.unit_deadline_ms) {
        OBS_COUNT("dist.units.reassigned", 1);
        ++stats_.units_reassigned;
        OBS_HIST("dist.straggler.latency_ms", elapsed_ms(slot.assigned_at));
        util::Log(util::LogLevel::kWarn)
            << "dist: unit " << units[static_cast<std::size_t>(slot.unit)].id
            << " missed its deadline (" << quiet << " ms quiet); "
            << "reassigning";
        retire_slot(slot, /*coordinator_kill=*/true);
      }
    }
  }

  // Orderly shutdown: ask, give workers a moment, then enforce.
  for (WorkerSlot& slot : slots) {
    if (!slot.alive) continue;
    (void)slot.proc.write_all(util::encode_frame(
        std::string(kShutdownFrame)));
    slot.proc.close_stdin();
  }
  const Clock::time_point shutdown_start = Clock::now();
  for (WorkerSlot& slot : slots) {
    if (!slot.alive) continue;
    int code = 0;
    while (!slot.proc.try_wait(&code)) {
      if (elapsed_ms(shutdown_start) > 500) {
        slot.proc.kill_hard();
        slot.proc.wait();
        break;
      }
      ::usleep(2000);
    }
    slot.alive = false;
  }

  // --- merge ------------------------------------------------------------
  Champion overall;
  std::uint64_t emitted_total = 0;
  bool cap_exceeded = false;
  std::size_t completed_seeds = 0;
  for (const UnitState& unit : units) {
    if (!unit.done) continue;
    completed_seeds += unit.end - unit.begin;
    emitted_total += unit.emitted;
    cap_exceeded = cap_exceeded || unit.cap_exceeded;
    if (unit.valid) overall.offer(unit.gain, unit.combo.messages,
                                  unit.combo.width);
  }
  if (cap_exceeded && emitted_total <= config.max_combinations) {
    // A unit stopped counting at cap+1; the true total can only be larger.
    emitted_total = config.max_combinations + 1;
  }
  const bool partial = cancelled && done_count < units.size();
  const double explored_fraction =
      seeds_total == 0 ? 1.0
                       : static_cast<double>(completed_seeds) /
                             static_cast<double>(seeds_total);
  if (partial) OBS_COUNT("resilience.cancelled_searches", 1);
  OBS_COUNT("selection.combinations", emitted_total);

  return selector_.finalize_distributed(overall.valid,
                                        std::move(overall.combo),
                                        emitted_total, partial,
                                        explored_fraction, config);
}

}  // namespace tracesel::selection
