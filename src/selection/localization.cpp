#include "selection/localization.hpp"

#include <algorithm>

namespace tracesel::selection {

LocalizationResult localize(
    const flow::InterleavedFlow& u,
    std::span<const flow::MessageId> selected,
    const std::vector<flow::IndexedMessage>& observed) {
  LocalizationResult r;
  r.total_paths = u.count_paths();
  const std::vector<flow::MessageId> sel(selected.begin(), selected.end());
  r.consistent_paths = u.count_consistent_paths(sel, observed);
  r.fraction = r.total_paths > 0.0 ? r.consistent_paths / r.total_paths : 0.0;
  return r;
}

util::Result<RobustLocalizationResult> localize_robust(
    const flow::InterleavedFlow& u,
    std::span<const flow::MessageId> selected,
    const std::vector<flow::IndexedMessage>& observed) {
  RobustLocalizationResult out;
  out.observed_total = observed.size();

  const double total_paths = u.count_paths();
  if (total_paths <= 0.0) {
    return util::Error{util::ErrorCode::kInvalidArgument,
                       "localize_robust: interleaving has no executions"};
  }

  // Screen: corruption can leave record ids outside the selected set (the
  // strict counter throws on those); they carry no ordering evidence here.
  const std::vector<flow::MessageId> sel(selected.begin(), selected.end());
  std::vector<flow::IndexedMessage> screened;
  screened.reserve(observed.size());
  for (const flow::IndexedMessage& im : observed) {
    if (std::find(sel.begin(), sel.end(), im.message) != sel.end())
      screened.push_back(im);
  }
  out.observed_screened = screened.size();
  out.degraded = screened.size() != observed.size();

  const auto count = [&](std::size_t prefix_len) {
    const std::vector<flow::IndexedMessage> prefix(
        screened.begin(),
        screened.begin() + static_cast<std::ptrdiff_t>(prefix_len));
    return u.count_consistent_paths(sel, prefix);
  };

  // Longest consistent prefix. Consistency is monotone: extending the
  // prefix can only shrink the consistent-path set, so once a prefix
  // counts zero every extension does too — binary search applies.
  double consistent = count(screened.size());
  std::size_t used = screened.size();
  if (consistent <= 0.0 && !screened.empty()) {
    out.degraded = true;
    std::size_t lo = 0, hi = screened.size();  // count(lo) > 0 invariant
    double lo_count = count(0);                // empty prefix: all paths
    while (lo + 1 < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      const double c = count(mid);
      if (c > 0.0) {
        lo = mid;
        lo_count = c;
      } else {
        hi = mid;
      }
    }
    used = lo;
    consistent = lo_count;
  }
  out.observed_used = used;

  out.result.total_paths = total_paths;
  out.result.consistent_paths = consistent;
  out.result.fraction = consistent / total_paths;

  out.confidence =
      observed.empty()
          ? 0.0
          : static_cast<double>(used) / static_cast<double>(observed.size());
  out.unusable = used == 0 && !observed.empty();
  return out;
}

}  // namespace tracesel::selection
