#include "selection/localization.hpp"

namespace tracesel::selection {

LocalizationResult localize(
    const flow::InterleavedFlow& u,
    std::span<const flow::MessageId> selected,
    const std::vector<flow::IndexedMessage>& observed) {
  LocalizationResult r;
  r.total_paths = u.count_paths();
  const std::vector<flow::MessageId> sel(selected.begin(), selected.end());
  r.consistent_paths = u.count_consistent_paths(sel, observed);
  r.fraction = r.total_paths > 0.0 ? r.consistent_paths / r.total_paths : 0.0;
  return r;
}

}  // namespace tracesel::selection
