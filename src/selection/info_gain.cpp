#include "selection/info_gain.hpp"

#include <cmath>
#include <map>

namespace tracesel::selection {

InfoGainEngine::InfoGainEngine(const flow::InterleavedFlow& u) : u_(&u) {
  const double num_states = static_cast<double>(u.num_nodes());
  const double total_edges = static_cast<double>(u.num_edges());
  if (total_edges == 0) return;

  // cnt[(y, x)] = number of edges labeled y that lead to product state x.
  std::map<std::pair<flow::IndexedMessage, flow::NodeId>, std::size_t> cnt;
  for (const auto& e : u.edges()) ++cnt[{e.label, e.to}];

  for (const auto& [key, c] : cnt) {
    const auto& [y, x] = key;
    (void)x;
    const double occ_y = static_cast<double>(u.occurrences(y));
    // p(x,y) = c / total_edges;  p(x) = 1/|S|;  p(y) = occ_y / total_edges.
    // Term: p(x,y) * ln( p(x,y) / (p(x) p(y)) )
    //     = (c/E) * ln( c * |S| / occ_y ).
    const double pxy = static_cast<double>(c) / total_edges;
    const double ratio = static_cast<double>(c) * num_states / occ_y;
    contrib_[y] += pxy * std::log(ratio);
  }

  for (const auto& [y, g] : contrib_) {
    contrib_by_message_[y.message] += g;
    total_gain_ += g;
  }
}

double InfoGainEngine::info_gain(
    std::span<const flow::MessageId> combination) const {
  double gain = 0.0;
  for (flow::MessageId m : combination) {
    const auto it = contrib_by_message_.find(m);
    if (it != contrib_by_message_.end()) gain += it->second;
  }
  return gain;
}

double InfoGainEngine::contribution(const flow::IndexedMessage& im) const {
  const auto it = contrib_.find(im);
  return it == contrib_.end() ? 0.0 : it->second;
}

double InfoGainEngine::message_contribution(flow::MessageId m) const {
  const auto it = contrib_by_message_.find(m);
  return it == contrib_by_message_.end() ? 0.0 : it->second;
}

}  // namespace tracesel::selection
