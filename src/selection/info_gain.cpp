#include "selection/info_gain.hpp"

#include <cmath>

#include "util/obs.hpp"

namespace tracesel::selection {

InfoGainEngine::InfoGainEngine(const flow::InterleavedFlow& u) : u_(&u) {
  OBS_SPAN("selection.gain.engine_build");
  // All probabilities range over the *concrete* product, so a
  // symmetry-reduced engine scores exactly like the unreduced one: both
  // reduce the per-edge statistics to the same in-edge class histograms
  // (k product states with c in-edges labeled y), and the sum below runs
  // over those classes in the same canonical order — labels ascending,
  // class sizes ascending — making the resulting doubles bit-identical
  // regardless of which engine produced them.
  const double num_states = static_cast<double>(u.num_product_states());
  const double total_edges = static_cast<double>(u.num_product_edges());
  if (total_edges == 0) return;

  for (const auto& h : u.label_target_histograms()) {
    const double occ_y = static_cast<double>(u.occurrences(h.label));
    double gain = 0.0;
    for (const auto& [c, k] : h.classes) {
      // p(x,y) = c / total_edges;  p(x) = 1/|S|;  p(y) = occ_y / E.
      // Term per state: p(x,y) * ln( p(x,y) / (p(x) p(y)) )
      //              = (c/E) * ln( c * |S| / occ_y ), k identical states.
      const double pxy = static_cast<double>(c) / total_edges;
      const double ratio = static_cast<double>(c) * num_states / occ_y;
      gain += static_cast<double>(k) * (pxy * std::log(ratio));
    }
    contrib_[h.label] = gain;
    contrib_by_message_[h.label.message] += gain;
    total_gain_ += gain;
  }

  // Flatten into the dense table the compiled Step-2 kernel reads: the
  // very same doubles, just addressable by id instead of by hash lookup.
  flow::MessageId max_id = 0;
  for (const auto& [m, c] : contrib_by_message_) max_id = std::max(max_id, m);
  dense_.assign(static_cast<std::size_t>(max_id) + 1, 0.0);
  for (const auto& [m, c] : contrib_by_message_) dense_[m] = c;
}

double InfoGainEngine::info_gain(
    std::span<const flow::MessageId> combination) const {
  OBS_COUNT("selection.gain.evals", 1);
  double gain = 0.0;
  for (flow::MessageId m : combination) {
    const auto it = contrib_by_message_.find(m);
    if (it != contrib_by_message_.end()) gain += it->second;
  }
  return gain;
}

double InfoGainEngine::contribution(const flow::IndexedMessage& im) const {
  const auto it = contrib_.find(im);
  return it == contrib_.end() ? 0.0 : it->second;
}

double InfoGainEngine::info_gain(std::span<const flow::MessageId> combination,
                                 flow::KernelMode mode) const {
  if (mode == flow::KernelMode::kGeneric) return info_gain(combination);
  OBS_COUNT("selection.gain.evals", 1);
  double gain = 0.0;
  for (flow::MessageId m : combination)
    gain += m < dense_.size() ? dense_[m] : 0.0;
  return gain;
}

double InfoGainEngine::message_contribution(flow::MessageId m) const {
  const auto it = contrib_by_message_.find(m);
  return it == contrib_by_message_.end() ? 0.0 : it->second;
}

double InfoGainEngine::message_contribution(flow::MessageId m,
                                            flow::KernelMode mode) const {
  if (mode == flow::KernelMode::kGeneric) return message_contribution(m);
  return m < dense_.size() ? dense_[m] : 0.0;
}

}  // namespace tracesel::selection
