#include "selection/dist_worker.hpp"

#include <errno.h>
#include <unistd.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "selection/work_unit.hpp"
#include "util/log.hpp"
#include "util/obs.hpp"
#include "util/subprocess.hpp"

namespace tracesel::selection {

namespace {

using util::ErrorCode;

/// Serializes all frame writes from this process (reply writer vs the
/// heartbeat thread) so frames never interleave on the pipe.
class FrameWriter {
 public:
  explicit FrameWriter(int fd) : fd_(fd) {}

  /// False when the coordinator is gone (EPIPE) — time to exit.
  bool send(std::string_view payload) {
    std::lock_guard<std::mutex> lock(mutex_);
    return util::write_frame(fd_, payload).ok();
  }

 private:
  int fd_;
  std::mutex mutex_;
};

/// Emits heartbeat frames for one unit every `interval` while in scope.
class HeartbeatThread {
 public:
  HeartbeatThread(FrameWriter& writer, std::uint64_t unit_id,
                  std::chrono::milliseconds interval)
      : writer_(writer), unit_id_(unit_id), interval_(interval) {
    if (interval_.count() > 0)
      thread_ = std::thread([this] { run(); });
  }

  ~HeartbeatThread() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
  }

 private:
  void run() {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!cv_.wait_for(lock, interval_, [this] { return stop_; })) {
      lock.unlock();
      writer_.send(serialize_heartbeat(unit_id_));
      OBS_COUNT("dist.worker.heartbeats", 1);
      lock.lock();
    }
  }

  FrameWriter& writer_;
  std::uint64_t unit_id_;
  std::chrono::milliseconds interval_;
  std::thread thread_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Handles one request frame. Returns false when the coordinator is gone.
bool handle_request(std::string_view payload, FrameWriter& writer,
                    const WorkerEngineFactory& factory,
                    std::map<std::uint64_t, WorkerEngine>& engines) {
  auto parsed = parse_unit_request(payload);
  if (!parsed.ok()) {
    return writer.send(serialize_unit_error(0, parsed.error().code,
                                            parsed.error().message));
  }
  const WorkUnitRequest& request = parsed.value();

  // A non-zero trace id means the coordinator is tracing: enable the obs
  // layer (one-way), install the context so the unit span parents under
  // the coordinator's root span, and reset so the telemetry shipped at
  // unit completion is this unit's delta alone. Log lines from this unit
  // carry its id, so interleaved multi-process logs stay attributable.
  const bool tracing = request.trace_id != 0;
  if (tracing) {
    obs::set_enabled(true);
    obs::reset();
    obs::set_trace_context({request.trace_id, request.parent_span_id});
    obs::set_process_label("tracesel-worker");
  }
  util::set_log_context("u" + std::to_string(request.unit_id));

  // Injected faults fire before any work so each failure mode is pure:
  // kill is a real crash (no reply, EOF at the coordinator), hang is a
  // real straggler (no heartbeats, no reply), corrupt damages an
  // otherwise-honest reply below.
  if (request.fault == DistFaultAction::kKillWorker) {
    std::_Exit(9);
  }
  if (request.fault == DistFaultAction::kHangWorker) {
    // Sleep "forever" (the coordinator SIGKILLs hung workers long before
    // this elapses). Deliberately no heartbeat thread: a hang is the
    // absence of progress *and* of liveness signals.
    std::this_thread::sleep_for(std::chrono::hours(1));
    return true;
  }

  WorkerEngine* engine = nullptr;
  auto it = engines.find(request.state.fingerprint);
  if (it != engines.end()) {
    engine = &it->second;
  } else {
    auto built = factory(request.state);
    if (!built.ok()) {
      return writer.send(serialize_unit_error(
          request.unit_id, built.error().code, built.error().message));
    }
    // Validate that the rebuilt search *is* the requested one before
    // caching it under the requested fingerprint.
    const WorkerEngine& we = built.value();
    const bool maximal =
        we.config.mode == SearchMode::kMaximal;
    if (search_fingerprint(we.selector->base(), we.config, maximal) !=
        request.state.fingerprint) {
      return writer.send(serialize_unit_error(
          request.unit_id, ErrorCode::kCorruptCapture,
          "worker: rebuilt search does not match the request fingerprint"));
    }
    if (we.selector->seed_count(we.config) != request.state.seeds_total) {
      return writer.send(serialize_unit_error(
          request.unit_id, ErrorCode::kCorruptCapture,
          "worker: rebuilt seed universe does not match the request"));
    }
    it = engines.emplace(request.state.fingerprint, std::move(built).value())
             .first;
    engine = &it->second;
  }

  ParallelSelector::UnitOutcome outcome;
  {
    // The unit span and the heartbeat thread share a scope: both close
    // before telemetry capture, so the heartbeat thread's shard has folded
    // into the retired accumulator by then and no increment is lost.
    obs::Span unit_span("dist.unit");
    HeartbeatThread heartbeat(writer, request.unit_id,
                              std::chrono::milliseconds(request.heartbeat_ms));
    outcome = engine->selector->run_unit(
        engine->config, static_cast<std::size_t>(request.seed_begin),
        static_cast<std::size_t>(request.seed_end));
  }
  OBS_COUNT("dist.worker.units", 1);
  util::Log(util::LogLevel::kDebug)
      << "dist.worker: unit done, seeds [" << request.seed_begin << ", "
      << request.seed_end << ")";

  // Telemetry rides its own advisory frame, sent before the reply: the
  // coordinator merges it into the distributed trace, and a receiver that
  // cannot parse it drops it without affecting the unit outcome.
  if (tracing &&
      !writer.send(serialize_unit_telemetry(request.unit_id,
                                            obs::capture_telemetry())))
    return false;

  WorkUnitReply reply;
  reply.unit_id = request.unit_id;
  reply.seed_begin = request.seed_begin;
  reply.seed_end = request.seed_end;
  reply.cap_exceeded = outcome.cap_exceeded;
  reply.state = request.state;  // identity + provenance echo back
  reply.state.next_seed = request.seed_end;
  reply.state.emitted = outcome.emitted;
  reply.state.best_valid = outcome.valid;
  if (outcome.valid) {
    reply.state.best_gain_bits = std::bit_cast<std::uint64_t>(outcome.gain);
    reply.state.best_width = outcome.combo.width;
    reply.state.best_messages = outcome.combo.messages;
  } else {
    reply.state.best_gain_bits = 0;
    reply.state.best_width = 0;
    reply.state.best_messages.clear();
  }
  reply.state.memo.clear();  // per-unit memos are not merged over the wire

  std::string wire = serialize_unit_reply(reply);
  if (request.fault == DistFaultAction::kCorruptFrame) {
    // Flip a byte inside the checkpoint body: the pipe frame stays intact
    // but the envelope checksum fails at the coordinator — exercising the
    // payload-corruption path (typed parse error, retry without respawn).
    wire[wire.size() / 2] ^= 0x20;
  }
  return writer.send(wire);
}

}  // namespace

int run_worker(int in_fd, int out_fd, const WorkerEngineFactory& factory) {
  util::ignore_sigpipe();
  FrameWriter writer(out_fd);
  util::FrameReader reader;
  std::map<std::uint64_t, WorkerEngine> engines;

  char buf[64 * 1024];
  for (;;) {
    std::string payload;
    const util::FrameReader::State state = reader.next(payload);
    if (state == util::FrameReader::State::kCorrupt) {
      util::Log(util::LogLevel::kError)
          << "worker: request stream corrupt: " << reader.corrupt_reason();
      return 2;
    }
    if (state == util::FrameReader::State::kNeedMore) {
      const ssize_t n = ::read(in_fd, buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) continue;
        util::Log(util::LogLevel::kError)
            << "worker: read from coordinator failed";
        return 2;
      }
      if (n == 0) return 0;  // coordinator closed our stdin: orderly exit
      reader.feed(buf, static_cast<std::size_t>(n));
      continue;
    }

    switch (classify_frame(payload)) {
      case FrameKind::kShutdown:
        return 0;
      case FrameKind::kUnitRequest:
        if (!handle_request(payload, writer, factory, engines)) {
          // Coordinator hung up mid-write; nothing left to serve.
          return 0;
        }
        break;
      default:
        // Unknown frames are reported (best-effort) and skipped so a newer
        // coordinator can talk to an older worker without killing it.
        writer.send(serialize_unit_error(0, ErrorCode::kParse,
                                         "worker: unexpected frame kind"));
        break;
    }
  }
}

}  // namespace tracesel::selection
