#pragma once
// Flow specification coverage (Def. 7): the visible states of a message are
// the product states reached by transitions labeled with it; the coverage of
// a message combination is |union of visible states| / |S|.

#include <span>
#include <vector>

#include "flow/interleaved_flow.hpp"

namespace tracesel::selection {

/// Product states reached by edges labeled with any selected message
/// (any index).
std::vector<flow::NodeId> visible_states(
    const flow::InterleavedFlow& u,
    std::span<const flow::MessageId> selected);

/// Def. 7 coverage in [0,1].
double flow_spec_coverage(const flow::InterleavedFlow& u,
                          std::span<const flow::MessageId> selected);

}  // namespace tracesel::selection
