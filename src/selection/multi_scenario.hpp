#pragma once
// Multi-scenario message selection — an extension beyond the paper.
//
// The paper selects a message combination *per usage scenario* ("we select
// messages per usage scenario", Sec. 5.3); silicon, however, has one trace
// buffer, and reconfiguring it between scenarios costs lab time. This
// selector picks a single combination maximizing the *weighted sum* of
// information gains across several scenario interleavings (weights model
// how often each scenario runs in the lab). Because the paper's estimator
// is additive per message within each scenario, the weighted objective is
// additive too, and the exact optimum is again a knapsack.

#include <cstdint>
#include <memory>
#include <vector>

#include "selection/combination.hpp"
#include "selection/info_gain.hpp"
#include "selection/packing.hpp"
#include "selection/selector.hpp"

namespace tracesel::selection {

/// One scenario: its interleaving and its lab-time weight.
struct WeightedScenario {
  const flow::InterleavedFlow* interleaving = nullptr;
  double weight = 1.0;
};

struct MultiScenarioResult {
  Combination combination;          ///< one configuration for all scenarios
  std::vector<PackedGroup> packed;  ///< Step 3 over the shared leftover
  double weighted_gain = 0.0;
  /// Def. 7 coverage the shared selection achieves on each scenario, in
  /// input order.
  std::vector<double> per_scenario_coverage;
  std::uint32_t used_width = 0;
  std::uint32_t buffer_width = 0;

  double utilization() const {
    return buffer_width ? static_cast<double>(used_width) / buffer_width
                        : 0.0;
  }
  std::vector<flow::MessageId> observable() const {
    return observable_messages(combination, packed);
  }
};

class MultiScenarioSelector {
 public:
  /// Scenarios must be non-empty with positive weights. `jobs` workers
  /// build the per-scenario InfoGainEngines concurrently (they are
  /// independent; 1 = serial, 0 = one per hardware thread).
  MultiScenarioSelector(const flow::MessageCatalog& catalog,
                        std::vector<WeightedScenario> scenarios,
                        std::size_t jobs = 1);

  /// Exact knapsack over the weighted aggregate gain, then greedy subgroup
  /// packing with the same objective. Honours config.buffer_width,
  /// config.packing and config.jobs (per-scenario coverage is evaluated in
  /// parallel; results are identical for every job count).
  MultiScenarioResult select(const SelectorConfig& config) const;

  // deprecated: use select(const SelectorConfig&) — the facade-wide options
  // struct (see tracesel/tracesel.hpp) — instead of loose knob arguments.
  MultiScenarioResult select(std::uint32_t buffer_width,
                             bool packing = true) const;

  /// Weighted aggregate contribution of one message.
  double contribution(flow::MessageId m) const;

  const std::vector<flow::MessageId>& candidates() const {
    return candidates_;
  }

 private:
  const flow::MessageCatalog* catalog_;
  std::vector<WeightedScenario> scenarios_;
  std::vector<std::unique_ptr<InfoGainEngine>> engines_;
  std::vector<flow::MessageId> candidates_;  ///< union of alphabets
};

}  // namespace tracesel::selection
