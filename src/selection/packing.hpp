#pragma once
// Step 3 of the selection method (Sec. 3.3): packing the leftover trace
// buffer with message *subgroups*.
//
// The Step 2 winner may leave unused buffer bits. Wide messages that could
// not fit often contain narrow sub-fields (e.g. cputhreadid[6] inside
// dmusiidata[20] on OpenSPARC T2) that do fit. Observing any sub-field of a
// message reveals that the message occurred — at the flow level of
// abstraction that gives the subgroup the information-gain and coverage
// contribution of its parent message, at a fraction of the width cost.
// We greedily add the subgroup maximizing the information gain of the union
// until nothing fits, exactly the iteration the paper describes.

#include <cstdint>
#include <string>
#include <vector>

#include "selection/combination.hpp"
#include "selection/info_gain.hpp"

namespace tracesel::selection {

/// One subgroup admitted by packing.
struct PackedGroup {
  flow::MessageId parent = flow::kInvalidMessage;
  std::string subgroup_name;
  std::uint32_t width = 0;

  friend bool operator==(const PackedGroup&, const PackedGroup&) = default;
};

/// Outcome of Step 3 on top of a Step 2 combination.
struct PackingResult {
  std::vector<PackedGroup> packed;
  std::uint32_t width_added = 0;
  double gain_after = 0.0;  ///< I(X;Y) of base union packed parents
};

class GainMemo;

/// Packs subgroups of messages not in `base` into the leftover
/// buffer_width - base.width bits. Only subgroups of `candidates` (the
/// participating flows' alphabet — pass MessageSelector::candidates()) are
/// considered, and only while each addition strictly increases the
/// information gain; tracing bits that observe nothing is worse than
/// leaving them free. Throws std::invalid_argument if the base already
/// exceeds the buffer. A non-null `memo` caches per-combination gains
/// (shared with the Step 2 search); hits return the exact double a
/// recomputation would, so results are unchanged. `mode` picks the scoring
/// kernel (both produce the same bits).
PackingResult pack_leftover(const flow::MessageCatalog& catalog,
                            const InfoGainEngine& engine,
                            const Combination& base,
                            std::uint32_t buffer_width,
                            const std::vector<flow::MessageId>& candidates,
                            GainMemo* memo = nullptr,
                            flow::KernelMode mode = flow::KernelMode::kGeneric);

/// The message ids observable after packing: base messages plus parents of
/// packed subgroups. This is what coverage/localization should be computed
/// over for a packed selection.
std::vector<flow::MessageId> observable_messages(
    const Combination& base, const std::vector<PackedGroup>& packed);

}  // namespace tracesel::selection
