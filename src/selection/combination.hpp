#pragma once
// Step 1 of the selection method (Sec. 3.1): enumerate message combinations
// whose total bit width fits the available trace buffer.
//
// A message combination is an unordered set of messages; its width is the
// sum of member widths (Def. 6 — indexing does not multiply width, because
// all instances of a message share the same physical interface signals).

#include <cstdint>
#include <span>
#include <vector>

#include "flow/message.hpp"

namespace tracesel::selection {

/// One candidate combination with its precomputed total width.
struct Combination {
  std::vector<flow::MessageId> messages;  ///< sorted, unique
  std::uint32_t width = 0;

  friend bool operator==(const Combination&, const Combination&) = default;
};

/// Enumerates every nonempty subset of `candidates` with total width
/// <= `budget` (Sec. 3.1). Exhaustive — exponential in candidates.size();
/// throws std::length_error if more than `max_results` combinations qualify,
/// directing callers to the maximal/greedy variants for large message sets.
std::vector<Combination> enumerate_combinations(
    const flow::MessageCatalog& catalog,
    std::span<const flow::MessageId> candidates, std::uint32_t budget,
    std::size_t max_results = 1u << 22);

/// Enumerates only *maximal* fitting combinations: those to which no further
/// candidate can be added without exceeding the budget. Because mutual
/// information gain is monotone under adding messages (each indexed message
/// contributes a nonnegative relative-entropy term), the Step 2 optimum is
/// always maximal, so searching these is lossless and much cheaper.
std::vector<Combination> enumerate_maximal_combinations(
    const flow::MessageCatalog& catalog,
    std::span<const flow::MessageId> candidates, std::uint32_t budget,
    std::size_t max_results = 1u << 22);

/// Sum of widths helper used by both enumerators.
std::uint32_t combination_width(const flow::MessageCatalog& catalog,
                                std::span<const flow::MessageId> messages);

}  // namespace tracesel::selection
