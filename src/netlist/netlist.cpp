#include "netlist/netlist.hpp"

#include <queue>
#include <stdexcept>

namespace tracesel::netlist {

std::string to_string(GateType type) {
  switch (type) {
    case GateType::kInput: return "input";
    case GateType::kConst0: return "const0";
    case GateType::kConst1: return "const1";
    case GateType::kFlop: return "flop";
    case GateType::kBuf: return "buf";
    case GateType::kNot: return "not";
    case GateType::kAnd: return "and";
    case GateType::kOr: return "or";
    case GateType::kXor: return "xor";
    case GateType::kMux: return "mux";
  }
  return "?";
}

NetId Netlist::add_input(std::string name) {
  gates_.push_back(Gate{GateType::kInput, {}, std::move(name)});
  const NetId id = static_cast<NetId>(gates_.size() - 1);
  inputs_.push_back(id);
  fanout_valid_ = false;
  return id;
}

NetId Netlist::add_const(bool value) {
  gates_.push_back(
      Gate{value ? GateType::kConst1 : GateType::kConst0, {}, {}});
  fanout_valid_ = false;
  return static_cast<NetId>(gates_.size() - 1);
}

NetId Netlist::add_flop(std::string name) {
  gates_.push_back(Gate{GateType::kFlop, {kInvalidNet}, std::move(name)});
  const NetId id = static_cast<NetId>(gates_.size() - 1);
  flops_.push_back(id);
  fanout_valid_ = false;
  return id;
}

void Netlist::set_flop_input(NetId flop, NetId d) {
  if (flop >= gates_.size() || gates_[flop].type != GateType::kFlop)
    throw std::invalid_argument("Netlist: set_flop_input on non-flop");
  if (d >= gates_.size())
    throw std::invalid_argument("Netlist: bad D net");
  gates_[flop].fanin[0] = d;
  fanout_valid_ = false;
}

NetId Netlist::add_gate(GateType type, std::vector<NetId> fanin,
                        std::string name) {
  switch (type) {
    case GateType::kBuf:
    case GateType::kNot:
      if (fanin.size() != 1)
        throw std::invalid_argument("Netlist: unary gate needs 1 fanin");
      break;
    case GateType::kAnd:
    case GateType::kOr:
    case GateType::kXor:
      if (fanin.size() < 2)
        throw std::invalid_argument("Netlist: n-ary gate needs >= 2 fanins");
      break;
    case GateType::kMux:
      if (fanin.size() != 3)
        throw std::invalid_argument("Netlist: mux needs 3 fanins");
      break;
    default:
      throw std::invalid_argument(
          "Netlist: add_gate cannot create inputs/consts/flops");
  }
  for (NetId f : fanin) {
    if (f >= gates_.size())
      throw std::invalid_argument("Netlist: bad fanin net");
  }
  gates_.push_back(Gate{type, std::move(fanin), std::move(name)});
  fanout_valid_ = false;
  return static_cast<NetId>(gates_.size() - 1);
}

const Gate& Netlist::gate(NetId id) const {
  if (id >= gates_.size()) throw std::out_of_range("Netlist: bad net id");
  return gates_[id];
}

std::optional<NetId> Netlist::find(std::string_view name) const {
  for (NetId i = 0; i < gates_.size(); ++i) {
    if (gates_[i].name == name) return i;
  }
  return std::nullopt;
}

const std::vector<NetId>& Netlist::fanout(NetId id) const {
  if (!fanout_valid_) {
    fanout_.assign(gates_.size(), {});
    for (NetId g = 0; g < gates_.size(); ++g) {
      for (NetId f : gates_[g].fanin) {
        if (f != kInvalidNet) fanout_[f].push_back(g);
      }
    }
    fanout_valid_ = true;
  }
  if (id >= gates_.size()) throw std::out_of_range("Netlist: bad net id");
  return fanout_[id];
}

std::vector<NetId> Netlist::validate_and_topo_order() const {
  // Flops, inputs and constants are sources for combinational evaluation;
  // combinational gates order by Kahn's algorithm over comb edges only.
  std::vector<std::uint32_t> indegree(gates_.size(), 0);
  for (NetId g = 0; g < gates_.size(); ++g) {
    const Gate& gate = gates_[g];
    if (gate.type == GateType::kFlop) {
      if (gate.fanin[0] == kInvalidNet)
        throw std::logic_error("Netlist: flop '" + gate.name +
                               "' has no D input");
      continue;  // flop D edges are sequential, not combinational
    }
    for (NetId f : gate.fanin) {
      (void)f;
      ++indegree[g];
    }
  }

  std::vector<NetId> order;
  order.reserve(gates_.size());
  std::queue<NetId> ready;
  for (NetId g = 0; g < gates_.size(); ++g) {
    if (indegree[g] == 0) ready.push(g);
  }
  // Combinational fanout: gate -> readers, excluding flop D edges.
  while (!ready.empty()) {
    const NetId g = ready.front();
    ready.pop();
    order.push_back(g);
    for (NetId reader : fanout(g)) {
      if (gates_[reader].type == GateType::kFlop) continue;
      if (--indegree[reader] == 0) ready.push(reader);
    }
  }
  if (order.size() != gates_.size())
    throw std::logic_error("Netlist: combinational cycle detected");
  return order;
}

Simulator::Simulator(const Netlist& netlist)
    : netlist_(&netlist), order_(netlist.validate_and_topo_order()) {
  values_.assign(netlist.num_nets(), false);
  flop_state_.assign(netlist.flops().size(), false);
  flop_out_ = flop_state_;
}

void Simulator::reset() {
  std::fill(values_.begin(), values_.end(), false);
  std::fill(flop_state_.begin(), flop_state_.end(), false);
  cycle_ = 0;
}

void Simulator::eval_comb() {
  const auto& gates = *netlist_;
  for (NetId id : order_) {
    const Gate& g = gates.gate(id);
    switch (g.type) {
      case GateType::kInput:
      case GateType::kFlop:
        break;  // set externally / from state
      case GateType::kConst0: values_[id] = false; break;
      case GateType::kConst1: values_[id] = true; break;
      case GateType::kBuf: values_[id] = values_[g.fanin[0]]; break;
      case GateType::kNot: values_[id] = !values_[g.fanin[0]]; break;
      case GateType::kAnd: {
        bool v = true;
        for (NetId f : g.fanin) v = v && values_[f];
        values_[id] = v;
        break;
      }
      case GateType::kOr: {
        bool v = false;
        for (NetId f : g.fanin) v = v || values_[f];
        values_[id] = v;
        break;
      }
      case GateType::kXor: {
        bool v = false;
        for (NetId f : g.fanin) v = v != values_[f];
        values_[id] = v;
        break;
      }
      case GateType::kMux:
        values_[id] =
            values_[g.fanin[0]] ? values_[g.fanin[2]] : values_[g.fanin[1]];
        break;
    }
  }
}

const std::vector<bool>& Simulator::step(
    const std::vector<bool>& input_values) {
  const auto& inputs = netlist_->inputs();
  if (input_values.size() != inputs.size())
    throw std::invalid_argument("Simulator: wrong number of input values");
  for (std::size_t i = 0; i < inputs.size(); ++i)
    values_[inputs[i]] = input_values[i];
  const auto& flops = netlist_->flops();
  for (std::size_t i = 0; i < flops.size(); ++i)
    values_[flops[i]] = flop_state_[i];

  eval_comb();

  for (std::size_t i = 0; i < flops.size(); ++i)
    flop_state_[i] = values_[netlist_->gate(flops[i]).fanin[0]];
  ++cycle_;
  flop_out_ = flop_state_;
  return flop_out_;
}

bool Simulator::value(NetId id) const {
  if (id >= values_.size()) throw std::out_of_range("Simulator: bad net");
  return values_[id];
}

}  // namespace tracesel::netlist
