#pragma once
// Synthetic USB 2.0 function controller (modeled on the OpenCores usb core
// the paper compares against, Sec. 5.4 / Table 4). Four modules:
//
//   UTMI / line speed  — line-state FSM, RX shift register, bit counter
//   Packet decoder     — PID/token registers, CRC5, decoder FSM
//   Packet assembler   — TX shift register, CRC16, TX FSM
//   Protocol engine    — main FSM, PID selectors, timeout counter
//
// The gate-level netlist is what the SRR/PageRank baselines analyze; the
// ten *interface signals* of Table 4 are groups of flops on module
// boundaries. The same interfaces, viewed at application level, form two
// flows (token/packet receive and packet transmit) whose messages carry
// the signal widths — that is what our information-gain method selects on.

#include <vector>

#include "flow/flow.hpp"
#include "flow/indexed_flow.hpp"
#include "flow/interleaved_flow.hpp"
#include "flow/message.hpp"
#include "netlist/netlist.hpp"
#include "netlist/signal_group.hpp"

namespace tracesel::netlist {

class UsbDesign {
 public:
  UsbDesign();

  const Netlist& netlist() const { return netlist_; }

  /// The ten Table 4 interface signals, in the paper's row order.
  const std::vector<SignalGroup>& interface_signals() const {
    return signals_;
  }
  const SignalGroup& signal(std::string_view name) const;

  // --- application-level view ---
  const flow::MessageCatalog& catalog() const { return catalog_; }
  const flow::Flow& rx_flow() const { return *rx_flow_; }
  const flow::Flow& tx_flow() const { return *tx_flow_; }

  /// rx ||| tx with `instances` legally indexed copies of each.
  flow::InterleavedFlow interleaving(
      std::uint32_t instances = 1,
      const flow::InterleaveOptions& options = {}) const;

  /// Message id of an interface signal (same names).
  flow::MessageId message_of(std::string_view signal_name) const;

 private:
  void build_netlist();
  void build_flows();

  Netlist netlist_;
  std::vector<SignalGroup> signals_;
  flow::MessageCatalog catalog_;
  // message ids
  flow::MessageId rx_data_, rx_valid_, rx_data_valid_, token_valid_,
      rx_data_done_, tx_data_, tx_valid_, send_token_, token_pid_sel_,
      data_pid_sel_;
  std::optional<flow::Flow> rx_flow_;
  std::optional<flow::Flow> tx_flow_;
};

}  // namespace tracesel::netlist
