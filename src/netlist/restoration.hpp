#pragma once
// Simulation-based state restoration — the engine behind SRR (State
// Restoration Ratio), the metric the gate-level baselines optimize
// (Basu & Mishra [2]; Ko & Nicolici).
//
// Given the values of a *traced* flip-flop subset over C cycles, restoration
// infers as many untraced flop values as 3-valued reasoning allows:
//  - forward propagation: evaluate combinational logic under X-semantics
//    (controlling values decide even with X inputs);
//  - backward justification: a known gate output constrains its inputs
//    (AND=1 forces all inputs 1; AND=0 with all-but-one inputs at 1 forces
//    the last to 0; XOR/NOT/BUF invert exactly; MUX propagates through the
//    selected leg);
//  - sequential transfer: flop(c+1) = D(c) in both directions.
// The passes iterate to a fixpoint. SRR = (traced + restored) / traced
// flop-cycle values, the standard definition.

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace tracesel::netlist {

struct RestorationResult {
  std::size_t traced_flop_cycles = 0;
  std::size_t restored_flop_cycles = 0;  ///< untraced flop-cycles recovered
  std::size_t total_flop_cycles = 0;

  /// State Restoration Ratio (>= 1.0 whenever anything is traced).
  double srr() const {
    return traced_flop_cycles == 0
               ? 0.0
               : static_cast<double>(traced_flop_cycles +
                                     restored_flop_cycles) /
                     static_cast<double>(traced_flop_cycles);
  }
  /// Fraction of all flop state known after restoration.
  double state_coverage() const {
    return total_flop_cycles == 0
               ? 0.0
               : static_cast<double>(traced_flop_cycles +
                                     restored_flop_cycles) /
                     static_cast<double>(total_flop_cycles);
  }
};

/// Which implication rules the engine may use — an ablation axis for the
/// SRR methodology (forward-only restoration corresponds to the earliest
/// signal-selection heuristics; backward justification is what made
/// restoration-based selection competitive).
struct RestorationOptions {
  bool forward = true;    ///< combinational forward propagation
  bool backward = true;   ///< combinational backward justification
  bool sequential = true; ///< flop(c+1) <-> D(c) transfer, both directions
};

class RestorationEngine {
 public:
  explicit RestorationEngine(const Netlist& netlist);

  /// `flop_values[c][i]` is the golden value of netlist.flops()[i] at cycle
  /// c (produced by Simulator::step); the engine reads only the rows of
  /// `traced_flops` and restores the rest. Primary inputs are unknown.
  RestorationResult restore(
      const std::vector<NetId>& traced_flops,
      const std::vector<std::vector<bool>>& flop_values,
      const RestorationOptions& options = {}) const;

 private:
  const Netlist* netlist_;
  std::vector<NetId> order_;  ///< combinational topo order
};

}  // namespace tracesel::netlist
