#pragma once
// Interface signal groups: named bundles of flip-flops on module
// boundaries. Gate-level selection methods pick individual flops; mapping
// selections back to signal groups is how Table 4 judges whether a method
// captured an application-level message.

#include <algorithm>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace tracesel::netlist {

/// A named group of flops forming one interface signal.
struct SignalGroup {
  std::string name;    ///< e.g. "rx_data"
  std::string module;  ///< e.g. "Packet decoder"
  std::vector<NetId> flops;
};

/// How much of a signal group a flop selection captures.
enum class SignalCoverage { kNone, kPartial, kFull };

inline SignalCoverage coverage_of(const SignalGroup& group,
                                  const std::vector<NetId>& selected) {
  std::size_t hit = 0;
  for (NetId f : group.flops) {
    if (std::find(selected.begin(), selected.end(), f) != selected.end())
      ++hit;
  }
  if (hit == 0) return SignalCoverage::kNone;
  if (hit == group.flops.size()) return SignalCoverage::kFull;
  return SignalCoverage::kPartial;
}

}  // namespace tracesel::netlist
