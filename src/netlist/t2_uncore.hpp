#pragma once
// Parameterizable gate-level model of the OpenSPARC T2 uncore — the
// NCU/DMU/SIU/CCX/MCU blocks whose interfaces carry the Table 1 flows.
//
// Purpose: substantiate the paper's scalability argument with a netlist of
// realistic structure and tunable size. The authors could not run SRR
// methods on T2 ("these methods are unable to scale", Sec. 5.4); sweeping
// this model's size in bench_scalability shows the blow-up concretely,
// and running the baselines on a small configuration shows once more that
// restoration-optimal flops are not interface messages.
//
// Structure per block (assembled from netlist/generators.hpp):
//   NCU — CPU-buffer FIFO, request decode FSM, PIO-write credit stage,
//         upstream data shift
//   DMU — command decode FSM, PIO queue FIFO, read/write credit counters,
//         payload CRC, Mondo generation counter + dmusiidata register
//   SIU — DMU-port arbiter, bypass + ordered queue FIFOs, forward shift,
//         siincu register
//   CCX — per-core request arbiter, grant one-hot, downstream shift
//   MCU — address decode FSM, refresh counter, data CRC
//
// Interface signal groups reuse the T2 message names so coverage results
// compare directly against the flow-level selection.

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "netlist/signal_group.hpp"

namespace tracesel::netlist {

struct T2UncoreConfig {
  std::uint32_t cores = 8;        ///< CCX requesters; drives arbiter size
  std::uint32_t data_width = 16;  ///< datapath register width
  std::uint32_t queue_bits = 4;   ///< FIFO occupancy counter width
};

class T2Uncore {
 public:
  explicit T2Uncore(const T2UncoreConfig& config = {});

  const Netlist& netlist() const { return netlist_; }
  const T2UncoreConfig& config() const { return config_; }

  /// Interface registers named after the T2 flow messages
  /// (ncupior/dmusiidata/siincu/...).
  const std::vector<SignalGroup>& interface_signals() const {
    return signals_;
  }

 private:
  T2UncoreConfig config_;
  Netlist netlist_;
  std::vector<SignalGroup> signals_;
};

}  // namespace tracesel::netlist
