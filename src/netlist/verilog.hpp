#pragma once
// Structural Verilog export of the netlist IR. The synthetic designs
// (USB controller, T2-uncore) become portable: dump them and run any
// external simulator/synthesizer on the same structure the baselines
// analyzed. Output is plain Verilog-2001 — wires, gate primitives and
// always @(posedge clk) flops — with stable, readable names.

#include <string>
#include <string_view>

#include "netlist/netlist.hpp"

namespace tracesel::netlist {

/// Renders the netlist as one Verilog module. Primary inputs become input
/// ports, every named flop an output port (so the module is observable);
/// unnamed nets get generated `n<id>` names. The module has `clk` and an
/// active-high synchronous `rst` that clears all flops (the IR's reset
/// semantics).
std::string to_verilog(const Netlist& netlist, std::string_view module_name);

}  // namespace tracesel::netlist
