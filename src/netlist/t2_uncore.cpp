#include "netlist/t2_uncore.hpp"

#include <stdexcept>

#include "netlist/generators.hpp"

namespace tracesel::netlist {

T2Uncore::T2Uncore(const T2UncoreConfig& config) : config_(config) {
  if (config_.cores < 2)
    throw std::invalid_argument("T2Uncore: need >= 2 cores");
  if (config_.data_width < 4)
    throw std::invalid_argument("T2Uncore: data_width >= 4");
  Netlist& nl = netlist_;
  const std::uint32_t w = config_.data_width;

  // ---- primary inputs ----
  const NetId cpu_req = nl.add_input("cpu_req");
  const NetId cpu_data = nl.add_input("cpu_data");
  const NetId io_data = nl.add_input("io_data");
  const NetId io_ready = nl.add_input("io_ready");
  std::vector<NetId> core_req;
  for (std::uint32_t c = 0; c < config_.cores; ++c)
    core_req.push_back(nl.add_input("core_req" + std::to_string(c)));

  // =================== CCX: cache crossbar ===================
  const Block ccx_arb = make_arbiter(nl, "ccx_arb", core_req);
  const NetId any_core_grant = nl.add_gate(
      GateType::kOr, {ccx_arb.outputs[0], ccx_arb.outputs[1]});
  // Downstream request register toward NCU (message ccxdreq).
  const Block ccx_dshift =
      make_shift_register(nl, "ccx_dsh", w, cpu_data, any_core_grant);
  std::vector<NetId> ccxdreq_reg;
  for (std::uint32_t i = 0; i < w; ++i) {
    const NetId f = nl.add_flop("ccxdreq" + std::to_string(i));
    nl.set_flop_input(
        f, nl.add_mux(any_core_grant, f, ccx_dshift.flops[i]));
    ccxdreq_reg.push_back(f);
  }
  // Grant indicator back to NCU (message ccxgnt).
  const NetId ccxgnt = nl.add_flop("ccxgnt");
  nl.set_flop_input(ccxgnt, any_core_grant);

  // =================== NCU: non-cacheable unit ===================
  // CPU buffer occupancy + request decode FSM.
  const Block ncu_fifo =
      make_fifo_ctrl(nl, "ncu_cpubuf", config_.queue_bits, cpu_req, ccxgnt);
  const Block ncu_fsm = make_onehot_fsm(nl, "ncu_fsm", 5, cpu_req);
  // PIO write request register (message ncupiow) with credit stage.
  std::vector<NetId> piow_data;
  for (std::uint32_t i = 0; i < w; ++i)
    piow_data.push_back(i % 2 ? cpu_data : nl.add_xor(cpu_data, io_data));
  const Block ncu_credit = make_credit_stage(
      nl, "ncupiow", w, piow_data, ncu_fsm.outputs[1], io_ready,
      config_.queue_bits);
  // Upstream data register toward CCX (message ncuupd).
  const Block ncu_upshift = make_shift_register(
      nl, "ncuupd", w, nl.add_xor(cpu_data, ccxgnt), ncu_fsm.outputs[2]);
  // Downstream acknowledge (message ncudack).
  const NetId ncudack = nl.add_flop("ncudack");
  nl.set_flop_input(ncudack, nl.add_and(ccxgnt, ncu_fsm.outputs[3]));

  // =================== DMU: data management unit ===================
  const Block dmu_fsm =
      make_onehot_fsm(nl, "dmu_fsm", 4, ncu_credit.outputs[0]);
  const Block dmu_pioq = make_fifo_ctrl(nl, "dmu_pioq", config_.queue_bits,
                                        ncu_credit.outputs[0], io_ready);
  const Block dmu_rdcrd = make_counter(nl, "dmu_rdcrd", config_.queue_bits,
                                       dmu_fsm.outputs[1]);
  const Block dmu_wrcrd = make_counter(nl, "dmu_wrcrd", config_.queue_bits,
                                       dmu_fsm.outputs[2]);
  const Block dmu_crc = make_crc(nl, "dmu_crc", w, io_data,
                                 dmu_fsm.outputs[1], {2, 5});
  // Mondo interrupt generation: counter ticks on io events; when it wraps
  // the dmusiidata register latches the CRC residue (payload + thread id).
  const Block mondo_cnt =
      make_counter(nl, "dmu_mondocnt", 4, io_ready);
  std::vector<NetId> dmusiidata_reg;
  for (std::uint32_t i = 0; i < std::min<std::uint32_t>(w, 20); ++i) {
    const NetId f = nl.add_flop("dmusiidata" + std::to_string(i));
    nl.set_flop_input(
        f, nl.add_mux(mondo_cnt.outputs[0], f,
                      dmu_crc.flops[i % dmu_crc.flops.size()]));
    dmusiidata_reg.push_back(f);
  }
  const NetId reqtot = nl.add_flop("reqtot");
  nl.set_flop_input(reqtot, mondo_cnt.outputs[0]);

  // =================== SIU: system interface unit ===================
  const Block siu_arb = make_arbiter(
      nl, "siu_arb", {reqtot, ncu_credit.outputs[0], dmu_fsm.outputs[3]});
  const Block siu_bypassq = make_fifo_ctrl(
      nl, "siu_bypq", config_.queue_bits, siu_arb.outputs[0], io_ready);
  const Block siu_orderedq = make_fifo_ctrl(
      nl, "siu_ordq", config_.queue_bits, siu_arb.outputs[1], io_ready);
  const Block siu_fwd = make_shift_register(
      nl, "siu_fwd", w, dmusiidata_reg[0], siu_arb.outputs[0]);
  // siincu register: interrupt forwarded to NCU.
  std::vector<NetId> siincu_reg;
  for (std::uint32_t i = 0; i < 4; ++i) {
    const NetId f = nl.add_flop("siincu" + std::to_string(i));
    nl.set_flop_input(f, nl.add_mux(siu_arb.outputs[0], f,
                                    siu_fwd.flops[i]));
    siincu_reg.push_back(f);
  }
  const NetId grant = nl.add_flop("grant");
  nl.set_flop_input(grant, siu_arb.outputs[0]);

  // =================== MCU: memory controller ===================
  const Block mcu_fsm = make_onehot_fsm(nl, "mcu_fsm", 6, ccxgnt);
  const Block mcu_refresh = make_counter(nl, "mcu_refresh", 8,
                                         nl.add_const(true));
  const Block mcu_crc = make_crc(nl, "mcu_crc", w, ccx_dshift.outputs[0],
                                 mcu_fsm.outputs[2], {1, 3});
  // mondoacknack: NCU retires the interrupt after MCU/CPU service.
  const NetId mondoacknack = nl.add_flop("mondoacknack");
  nl.set_flop_input(mondoacknack,
                    nl.add_and(siincu_reg[0], mcu_fsm.outputs[4]));

  (void)ncu_fifo;
  (void)dmu_pioq;
  (void)dmu_rdcrd;
  (void)dmu_wrcrd;
  (void)siu_bypassq;
  (void)siu_orderedq;
  (void)mcu_refresh;
  (void)mcu_crc;
  (void)ncu_upshift;

  // ---- interface signal groups (T2 message names) ----
  signals_ = {
      SignalGroup{"ccxdreq", "CCX", ccxdreq_reg},
      SignalGroup{"ccxgnt", "CCX", {ccxgnt}},
      SignalGroup{"ncupiow", "NCU",
                  std::vector<NetId>(ncu_credit.flops.begin() +
                                         config_.queue_bits,
                                     ncu_credit.flops.end() - 1)},
      SignalGroup{"ncudack", "NCU", {ncudack}},
      SignalGroup{"dmusiidata", "DMU", dmusiidata_reg},
      SignalGroup{"reqtot", "DMU", {reqtot}},
      SignalGroup{"siincu", "SIU", siincu_reg},
      SignalGroup{"grant", "SIU", {grant}},
      SignalGroup{"mondoacknack", "NCU", {mondoacknack}},
  };

  // Construction sanity.
  (void)netlist_.validate_and_topo_order();
}

}  // namespace tracesel::netlist
