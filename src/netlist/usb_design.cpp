#include "netlist/usb_design.hpp"

#include <stdexcept>

#include "flow/flow_builder.hpp"

namespace tracesel::netlist {

namespace {

/// A named bank of flops with muxed load/shift/hold behaviour; returns ids.
std::vector<NetId> make_register(Netlist& nl, const std::string& name,
                                 std::size_t width) {
  std::vector<NetId> regs;
  regs.reserve(width);
  for (std::size_t i = 0; i < width; ++i)
    regs.push_back(nl.add_flop(name + std::to_string(i)));
  return regs;
}

/// Ripple counter: bit i toggles when all lower bits are 1.
void wire_counter(Netlist& nl, const std::vector<NetId>& bits, NetId enable) {
  NetId carry = enable;
  for (NetId b : bits) {
    nl.set_flop_input(b, nl.add_xor(b, carry));
    carry = nl.add_and(carry, b);
  }
}

/// Shift register shifting `in` through `bits` when `enable`, else holding.
void wire_shift(Netlist& nl, const std::vector<NetId>& bits, NetId in,
                NetId enable) {
  NetId prev = in;
  for (NetId b : bits) {
    nl.set_flop_input(b, nl.add_mux(enable, b, prev));
    prev = b;
  }
}

/// Parallel load when `load`, else hold.
void wire_load(Netlist& nl, const std::vector<NetId>& bits,
               const std::vector<NetId>& from, NetId load) {
  for (std::size_t i = 0; i < bits.size(); ++i)
    nl.set_flop_input(bits[i], nl.add_mux(load, bits[i], from[i]));
}

/// LFSR-style CRC: shift with XOR feedback taps, enabled.
void wire_crc(Netlist& nl, const std::vector<NetId>& bits, NetId in,
              NetId enable) {
  const NetId feedback = nl.add_xor(bits.back(), in);
  NetId prev = feedback;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    NetId next = prev;
    if (i % 2 == 1) next = nl.add_xor(prev, feedback);  // polynomial taps
    nl.set_flop_input(bits[i], nl.add_mux(enable, bits[i], next));
    prev = bits[i];
  }
}

}  // namespace

UsbDesign::UsbDesign() {
  build_netlist();
  build_flows();
}

void UsbDesign::build_netlist() {
  Netlist& nl = netlist_;

  // Primary inputs: differential line pair plus host-side controls.
  const NetId dp = nl.add_input("usb_dp");
  const NetId dn = nl.add_input("usb_dn");
  const NetId host_req = nl.add_input("host_req");
  const NetId host_mode0 = nl.add_input("host_mode0");
  const NetId host_mode1 = nl.add_input("host_mode1");

  // ---------------- UTMI / line speed ----------------
  // Line state FSM (3 flops): tracks J/K/SE0 symbols.
  const auto ls = make_register(nl, "utmi_ls", 3);
  nl.set_flop_input(ls[0], nl.add_xor(dp, dn));
  nl.set_flop_input(ls[1], nl.add_and(dp, nl.add_not(dn)));
  nl.set_flop_input(ls[2], nl.add_or(ls[0], nl.add_and(dn, ls[1])));

  // Bit counter (3 flops) counts symbol beats while the line is active.
  const auto bitcnt = make_register(nl, "utmi_cnt", 3);
  const NetId line_active = nl.add_or(ls[0], ls[1]);
  wire_counter(nl, bitcnt, line_active);

  // RX shift register (8 flops): shifts dp while active.
  const auto rx_sh = make_register(nl, "utmi_rxsh", 8);
  wire_shift(nl, rx_sh, dp, line_active);

  // rx_valid: byte boundary (counter wrap while active).
  const NetId byte_tick =
      nl.add_and(nl.add_and(bitcnt[0], bitcnt[1]), bitcnt[2]);
  const NetId rx_valid = nl.add_flop("rx_valid");
  nl.set_flop_input(rx_valid, nl.add_and(byte_tick, line_active));

  // rx_data register (8 flops): latches the shifter on rx_valid.
  const auto rx_data = make_register(nl, "rx_data", 8);
  wire_load(nl, rx_data, rx_sh, rx_valid);

  // ---------------- Packet decoder ----------------
  // PID register (4 flops) latches the low nibble on the first byte.
  const auto dec_fsm = make_register(nl, "dec_fsm", 3);
  const NetId first_byte = nl.add_and(
      rx_valid, nl.add_not(nl.add_or(dec_fsm[0], dec_fsm[1])));
  const auto pid = make_register(nl, "dec_pid", 4);
  wire_load(nl, pid, {rx_data[0], rx_data[1], rx_data[2], rx_data[3]},
            first_byte);
  nl.set_flop_input(dec_fsm[0], nl.add_or(first_byte, dec_fsm[1]));
  nl.set_flop_input(dec_fsm[1],
                    nl.add_and(dec_fsm[0], nl.add_not(dec_fsm[2])));
  nl.set_flop_input(dec_fsm[2], nl.add_and(dec_fsm[1], rx_valid));

  // Token buffer (11 flops) shifting rx_data bit 0 during token bytes.
  const auto tokbuf = make_register(nl, "dec_tok", 11);
  wire_shift(nl, tokbuf, rx_data[0], nl.add_and(rx_valid, dec_fsm[0]));

  // CRC5 (5 flops) over the token stream.
  const auto crc5 = make_register(nl, "dec_crc5", 5);
  wire_crc(nl, crc5, rx_data[0], nl.add_and(rx_valid, dec_fsm[0]));

  // Decoder interface strobes.
  const NetId token_ok = nl.add_and(nl.add_not(crc5[4]),
                                    nl.add_and(pid[0], nl.add_not(pid[1])));
  const NetId rx_data_valid = nl.add_flop("rx_data_valid");
  nl.set_flop_input(rx_data_valid, nl.add_and(rx_valid, dec_fsm[1]));
  const NetId token_valid = nl.add_flop("token_valid");
  nl.set_flop_input(token_valid, nl.add_and(token_ok, dec_fsm[2]));
  const NetId rx_data_done = nl.add_flop("rx_data_done");
  nl.set_flop_input(rx_data_done,
                    nl.add_and(dec_fsm[2], nl.add_not(line_active)));

  // ---------------- Protocol engine ----------------
  const auto pe_fsm = make_register(nl, "pe_fsm", 4);
  nl.set_flop_input(pe_fsm[0], nl.add_or(token_valid, pe_fsm[1]));
  nl.set_flop_input(pe_fsm[1], nl.add_and(pe_fsm[0], host_req));
  nl.set_flop_input(pe_fsm[2], nl.add_or(pe_fsm[1], rx_data_done));
  nl.set_flop_input(pe_fsm[3],
                    nl.add_and(pe_fsm[2], nl.add_not(pe_fsm[0])));

  const NetId send_token = nl.add_flop("send_token");
  nl.set_flop_input(send_token, nl.add_and(pe_fsm[1], host_req));

  const auto token_pid_sel = make_register(nl, "token_pid_sel", 2);
  wire_load(nl, token_pid_sel, {host_mode0, host_mode1}, send_token);
  const auto data_pid_sel = make_register(nl, "data_pid_sel", 2);
  wire_load(nl, data_pid_sel, {nl.add_xor(host_mode0, pe_fsm[3]),
                               nl.add_xor(host_mode1, pe_fsm[2])},
            send_token);

  // Timeout counter (8 flops), free-running while a transaction is open.
  const auto timeout = make_register(nl, "pe_timeout", 8);
  wire_counter(nl, timeout, pe_fsm[0]);

  // ---------------- Packet assembler ----------------
  const auto tx_fsm = make_register(nl, "asm_fsm", 3);
  nl.set_flop_input(tx_fsm[0], nl.add_or(send_token, tx_fsm[1]));
  nl.set_flop_input(tx_fsm[1],
                    nl.add_and(tx_fsm[0], nl.add_not(tx_fsm[2])));
  nl.set_flop_input(tx_fsm[2], nl.add_and(tx_fsm[1], tx_fsm[0]));

  // TX shift register (tx_data, 8 flops) serializes PID + payload.
  const auto tx_data = make_register(nl, "tx_data", 8);
  wire_shift(nl, tx_data, nl.add_xor(token_pid_sel[0], data_pid_sel[1]),
             tx_fsm[0]);

  // CRC16 (16 flops) over the outgoing stream.
  const auto crc16 = make_register(nl, "asm_crc16", 16);
  wire_crc(nl, crc16, tx_data[7], tx_fsm[0]);

  const NetId tx_valid = nl.add_flop("tx_valid");
  nl.set_flop_input(tx_valid, nl.add_and(tx_fsm[2], tx_fsm[0]));

  // ---------------- Table 4 interface signal groups ----------------
  signals_ = {
      SignalGroup{"rx_data", "UTMI / line speed", rx_data},
      SignalGroup{"rx_valid", "UTMI / line speed", {rx_valid}},
      SignalGroup{"rx_data_valid", "Packet decoder", {rx_data_valid}},
      SignalGroup{"token_valid", "Packet decoder", {token_valid}},
      SignalGroup{"rx_data_done", "Packet decoder", {rx_data_done}},
      SignalGroup{"tx_data", "Packet assembler", tx_data},
      SignalGroup{"tx_valid", "Packet assembler", {tx_valid}},
      SignalGroup{"send_token", "Protocol engine", {send_token}},
      SignalGroup{"token_pid_sel", "Protocol engine", token_pid_sel},
      SignalGroup{"data_pid_sel", "Protocol engine", data_pid_sel},
  };

  // Construction sanity: the netlist must be combinationally acyclic and
  // fully wired.
  (void)netlist_.validate_and_topo_order();
}

void UsbDesign::build_flows() {
  // Application-level messages: the interface signals with their widths,
  // between the modules they connect.
  rx_data_ = catalog_.add("rx_data", 8, "UTMI", "PktDec");
  rx_valid_ = catalog_.add("rx_valid", 1, "UTMI", "PktDec");
  rx_data_valid_ = catalog_.add("rx_data_valid", 1, "PktDec", "ProtEng");
  token_valid_ = catalog_.add("token_valid", 1, "PktDec", "ProtEng");
  rx_data_done_ = catalog_.add("rx_data_done", 1, "PktDec", "ProtEng");
  tx_data_ = catalog_.add("tx_data", 8, "PktAsm", "UTMI");
  tx_valid_ = catalog_.add("tx_valid", 1, "PktAsm", "UTMI");
  send_token_ = catalog_.add("send_token", 1, "ProtEng", "PktAsm");
  token_pid_sel_ = catalog_.add("token_pid_sel", 2, "ProtEng", "PktAsm");
  data_pid_sel_ = catalog_.add("data_pid_sel", 2, "ProtEng", "PktAsm");

  {
    flow::FlowBuilder b("UsbRx");
    b.state("Idle", flow::FlowBuilder::kInitial)
        .state("Sync")
        .state("Shift")
        .state("Data", flow::FlowBuilder::kAtomic)
        .state("Eop")
        .state("Done", flow::FlowBuilder::kStop)
        .transition("Idle", rx_valid_, "Sync")
        .transition("Sync", rx_data_, "Shift")
        .transition("Shift", rx_data_valid_, "Data")
        .transition("Data", rx_data_done_, "Eop")
        .transition("Eop", token_valid_, "Done");
    rx_flow_ = b.build(catalog_);
  }
  {
    flow::FlowBuilder b("UsbTx");
    b.state("Idle", flow::FlowBuilder::kInitial)
        .state("TokSel")
        .state("PidSel")
        .state("DataSel", flow::FlowBuilder::kAtomic)
        .state("Shift")
        .state("Done", flow::FlowBuilder::kStop)
        .transition("Idle", send_token_, "TokSel")
        .transition("TokSel", token_pid_sel_, "PidSel")
        .transition("PidSel", data_pid_sel_, "DataSel")
        .transition("DataSel", tx_data_, "Shift")
        .transition("Shift", tx_valid_, "Done");
    tx_flow_ = b.build(catalog_);
  }
}

const SignalGroup& UsbDesign::signal(std::string_view name) const {
  for (const SignalGroup& s : signals_) {
    if (s.name == name) return s;
  }
  throw std::out_of_range("UsbDesign: unknown signal '" + std::string(name) +
                          "'");
}

flow::InterleavedFlow UsbDesign::interleaving(
    std::uint32_t instances, const flow::InterleaveOptions& options) const {
  return flow::InterleavedFlow::build(
      flow::make_instances({&*rx_flow_, &*tx_flow_}, instances), options);
}

flow::MessageId UsbDesign::message_of(std::string_view signal_name) const {
  return catalog_.require(signal_name);
}

}  // namespace tracesel::netlist
