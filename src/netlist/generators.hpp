#pragma once
// Parameterizable RTL-idiom generators over the netlist IR: counters,
// shift registers, LFSR/CRC chains, one-hot FSMs, round-robin arbiters,
// FIFO controllers and valid/credit handshakes — the building blocks both
// the synthetic USB controller and the T2-uncore netlist are assembled
// from. Each generator is functionally verified by unit tests through the
// two-valued simulator.

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace tracesel::netlist {

/// A generated block: its flops (dense, LSB first where meaningful) and
/// the nets a parent block wires further.
struct Block {
  std::vector<NetId> flops;
  std::vector<NetId> outputs;
};

/// Binary up-counter: `width` flops, +1 per cycle while `enable` is high.
/// outputs[0] is the carry-out (all bits wrapping this cycle).
Block make_counter(Netlist& nl, const std::string& prefix,
                   std::uint32_t width, NetId enable);

/// Shift register: shifts `in` towards flops.back() when `enable`.
/// outputs[0] is the serial tail.
Block make_shift_register(Netlist& nl, const std::string& prefix,
                          std::uint32_t width, NetId in, NetId enable);

/// Galois LFSR / CRC chain over `taps` (bit positions with XOR feedback).
/// outputs[0] is the feedback net.
Block make_crc(Netlist& nl, const std::string& prefix, std::uint32_t width,
               NetId in, NetId enable, const std::vector<std::uint32_t>& taps);

/// One-hot FSM with `states` stages: exactly one flop high, advancing on
/// `advance`, reset-looping from the last stage. Flop 0 starts... note the
/// IR resets flops to 0, so the generator ORs stage 0 with "all stages
/// low" to self-initialize. outputs[i] = stage i indicator.
Block make_onehot_fsm(Netlist& nl, const std::string& prefix,
                      std::uint32_t states, NetId advance);

/// Arbiter over `requests`: priority-chain grants (index 0 wins ties) plus
/// a one-hot rotation pointer advanced on every grant — the bookkeeping
/// state a rotating-priority arbiter carries, in a form simple enough to
/// verify exactly. outputs = grant nets (one per requester).
Block make_arbiter(Netlist& nl, const std::string& prefix,
                   const std::vector<NetId>& requests);

/// FIFO occupancy controller: `depth_bits`-wide counter incremented on
/// push, decremented on pop; outputs[0] = empty, outputs[1] = full
/// (saturation flags). Models queue credit tracking.
Block make_fifo_ctrl(Netlist& nl, const std::string& prefix,
                     std::uint32_t depth_bits, NetId push, NetId pop);

/// Valid/credit handshake register stage: a data register of `width` bits
/// loading `data_in` when `valid_in` and credit available; a credit
/// counter of `credit_bits`. outputs[0] = valid_out.
Block make_credit_stage(Netlist& nl, const std::string& prefix,
                        std::uint32_t width,
                        const std::vector<NetId>& data_in, NetId valid_in,
                        NetId credit_return, std::uint32_t credit_bits);

}  // namespace tracesel::netlist
