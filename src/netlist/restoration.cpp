#include "netlist/restoration.hpp"

#include <algorithm>
#include <stdexcept>

namespace tracesel::netlist {

namespace {

Tri tri_not(Tri a) {
  if (a == Tri::kX) return Tri::kX;
  return a == Tri::kOne ? Tri::kZero : Tri::kOne;
}

}  // namespace

RestorationEngine::RestorationEngine(const Netlist& netlist)
    : netlist_(&netlist), order_(netlist.validate_and_topo_order()) {}

RestorationResult RestorationEngine::restore(
    const std::vector<NetId>& traced_flops,
    const std::vector<std::vector<bool>>& flop_values,
    const RestorationOptions& options) const {
  const Netlist& nl = *netlist_;
  const std::size_t cycles = flop_values.size();
  const auto& flops = nl.flops();
  for (const auto& row : flop_values) {
    if (row.size() != flops.size())
      throw std::invalid_argument(
          "RestorationEngine: flop_values row size mismatch");
  }
  // flop id -> dense index
  std::vector<std::size_t> flop_index(nl.num_nets(), ~std::size_t{0});
  for (std::size_t i = 0; i < flops.size(); ++i) flop_index[flops[i]] = i;
  for (NetId t : traced_flops) {
    if (t >= nl.num_nets() || flop_index[t] == ~std::size_t{0})
      throw std::invalid_argument(
          "RestorationEngine: traced net is not a flop");
  }

  // Value grid: grid[c * num_nets + n]. Flop nets hold the flop's *output*
  // (state) during cycle c.
  const std::size_t n_nets = nl.num_nets();
  std::vector<Tri> grid(cycles * n_nets, Tri::kX);
  auto at = [&](std::size_t c, NetId n) -> Tri& {
    return grid[c * n_nets + n];
  };

  // Seed: traced flop states every cycle; constants everywhere.
  for (std::size_t c = 0; c < cycles; ++c) {
    for (NetId t : traced_flops)
      at(c, t) = flop_values[c][flop_index[t]] ? Tri::kOne : Tri::kZero;
    for (NetId n = 0; n < n_nets; ++n) {
      if (nl.gate(n).type == GateType::kConst0) at(c, n) = Tri::kZero;
      if (nl.gate(n).type == GateType::kConst1) at(c, n) = Tri::kOne;
    }
  }

  bool changed = true;
  auto set = [&](std::size_t c, NetId n, Tri v) {
    if (v == Tri::kX) return;
    Tri& slot = at(c, n);
    if (slot == Tri::kX) {
      slot = v;
      changed = true;
    }
    // Conflicting assignments cannot arise from consistent golden traces;
    // keep the first value if they somehow do.
  };

  int sweeps = 0;
  while (changed && sweeps < 64) {
    changed = false;
    ++sweeps;

    for (std::size_t c = 0; c < cycles; ++c) {
      // ---- forward propagation in topo order ----
      if (options.forward)
      for (NetId id : order_) {
        const Gate& g = nl.gate(id);
        switch (g.type) {
          case GateType::kInput:
          case GateType::kFlop:
          case GateType::kConst0:
          case GateType::kConst1:
            break;
          case GateType::kBuf:
            set(c, id, at(c, g.fanin[0]));
            break;
          case GateType::kNot:
            set(c, id, tri_not(at(c, g.fanin[0])));
            break;
          case GateType::kAnd: {
            bool any_x = false, any_zero = false;
            for (NetId f : g.fanin) {
              const Tri v = at(c, f);
              if (v == Tri::kZero) any_zero = true;
              if (v == Tri::kX) any_x = true;
            }
            if (any_zero) set(c, id, Tri::kZero);
            else if (!any_x) set(c, id, Tri::kOne);
            break;
          }
          case GateType::kOr: {
            bool any_x = false, any_one = false;
            for (NetId f : g.fanin) {
              const Tri v = at(c, f);
              if (v == Tri::kOne) any_one = true;
              if (v == Tri::kX) any_x = true;
            }
            if (any_one) set(c, id, Tri::kOne);
            else if (!any_x) set(c, id, Tri::kZero);
            break;
          }
          case GateType::kXor: {
            bool any_x = false, acc = false;
            for (NetId f : g.fanin) {
              const Tri v = at(c, f);
              if (v == Tri::kX) {
                any_x = true;
                break;
              }
              acc = acc != (v == Tri::kOne);
            }
            if (!any_x) set(c, id, acc ? Tri::kOne : Tri::kZero);
            break;
          }
          case GateType::kMux: {
            const Tri sel = at(c, g.fanin[0]);
            const Tri a = at(c, g.fanin[1]);  // sel == 0
            const Tri b = at(c, g.fanin[2]);  // sel == 1
            if (sel == Tri::kZero) set(c, id, a);
            else if (sel == Tri::kOne) set(c, id, b);
            else if (a != Tri::kX && a == b) set(c, id, a);
            break;
          }
        }
      }

      // ---- backward justification in reverse topo order ----
      if (options.backward)
      for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
        const NetId id = *it;
        const Gate& g = nl.gate(id);
        const Tri out = at(c, id);
        if (out == Tri::kX) continue;
        switch (g.type) {
          case GateType::kBuf:
            set(c, g.fanin[0], out);
            break;
          case GateType::kNot:
            set(c, g.fanin[0], tri_not(out));
            break;
          case GateType::kAnd:
            if (out == Tri::kOne) {
              for (NetId f : g.fanin) set(c, f, Tri::kOne);
            } else {
              // out == 0: if exactly one input is X and all others are 1,
              // the X input must be 0.
              NetId unknown = kInvalidNet;
              bool all_others_one = true;
              for (NetId f : g.fanin) {
                const Tri v = at(c, f);
                if (v == Tri::kX) {
                  if (unknown != kInvalidNet) {
                    all_others_one = false;
                    break;
                  }
                  unknown = f;
                } else if (v == Tri::kZero) {
                  all_others_one = false;  // already justified
                  break;
                }
              }
              if (all_others_one && unknown != kInvalidNet)
                set(c, unknown, Tri::kZero);
            }
            break;
          case GateType::kOr:
            if (out == Tri::kZero) {
              for (NetId f : g.fanin) set(c, f, Tri::kZero);
            } else {
              NetId unknown = kInvalidNet;
              bool all_others_zero = true;
              for (NetId f : g.fanin) {
                const Tri v = at(c, f);
                if (v == Tri::kX) {
                  if (unknown != kInvalidNet) {
                    all_others_zero = false;
                    break;
                  }
                  unknown = f;
                } else if (v == Tri::kOne) {
                  all_others_zero = false;
                  break;
                }
              }
              if (all_others_zero && unknown != kInvalidNet)
                set(c, unknown, Tri::kOne);
            }
            break;
          case GateType::kXor: {
            NetId unknown = kInvalidNet;
            bool acc = (out == Tri::kOne);
            bool ok = true;
            for (NetId f : g.fanin) {
              const Tri v = at(c, f);
              if (v == Tri::kX) {
                if (unknown != kInvalidNet) {
                  ok = false;
                  break;
                }
                unknown = f;
              } else {
                acc = acc != (v == Tri::kOne);
              }
            }
            if (ok && unknown != kInvalidNet)
              set(c, unknown, acc ? Tri::kOne : Tri::kZero);
            break;
          }
          case GateType::kMux: {
            const Tri sel = at(c, g.fanin[0]);
            if (sel == Tri::kZero) set(c, g.fanin[1], out);
            else if (sel == Tri::kOne) set(c, g.fanin[2], out);
            break;
          }
          default:
            break;
        }
      }
    }

    // ---- sequential transfer across cycle boundaries ----
    if (options.sequential)
    for (std::size_t c = 0; c + 1 < cycles; ++c) {
      for (NetId f : flops) {
        const NetId d = nl.gate(f).fanin[0];
        // forward: known D at c determines state at c+1
        set(c + 1, f, at(c, d));
        // backward: known state at c+1 justifies D at c
        set(c, d, at(c + 1, f));
      }
    }
  }

  RestorationResult result;
  result.total_flop_cycles = cycles * flops.size();
  std::vector<bool> traced_mask(n_nets, false);
  for (NetId t : traced_flops) traced_mask[t] = true;
  for (std::size_t c = 0; c < cycles; ++c) {
    for (NetId f : flops) {
      if (traced_mask[f]) {
        ++result.traced_flop_cycles;
      } else if (at(c, f) != Tri::kX) {
        ++result.restored_flop_cycles;
      }
    }
  }
  return result;
}

}  // namespace tracesel::netlist
