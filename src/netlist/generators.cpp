#include "netlist/generators.hpp"

#include <algorithm>
#include <stdexcept>

namespace tracesel::netlist {

namespace {

std::vector<NetId> make_flops(Netlist& nl, const std::string& prefix,
                              std::uint32_t width) {
  std::vector<NetId> flops;
  flops.reserve(width);
  for (std::uint32_t i = 0; i < width; ++i)
    flops.push_back(nl.add_flop(prefix + std::to_string(i)));
  return flops;
}

NetId reduce_or(Netlist& nl, const std::vector<NetId>& nets) {
  if (nets.empty()) throw std::invalid_argument("reduce_or: empty");
  if (nets.size() == 1) return nets[0];
  return nl.add_gate(GateType::kOr, nets);
}

NetId reduce_and(Netlist& nl, const std::vector<NetId>& nets) {
  if (nets.empty()) throw std::invalid_argument("reduce_and: empty");
  if (nets.size() == 1) return nets[0];
  return nl.add_gate(GateType::kAnd, nets);
}

}  // namespace

Block make_counter(Netlist& nl, const std::string& prefix,
                   std::uint32_t width, NetId enable) {
  if (width == 0) throw std::invalid_argument("make_counter: zero width");
  Block block;
  block.flops = make_flops(nl, prefix, width);
  NetId carry = enable;
  for (NetId b : block.flops) {
    nl.set_flop_input(b, nl.add_xor(b, carry));
    carry = nl.add_and(carry, b);
  }
  block.outputs = {carry};
  return block;
}

Block make_shift_register(Netlist& nl, const std::string& prefix,
                          std::uint32_t width, NetId in, NetId enable) {
  if (width == 0)
    throw std::invalid_argument("make_shift_register: zero width");
  Block block;
  block.flops = make_flops(nl, prefix, width);
  NetId prev = in;
  for (NetId b : block.flops) {
    nl.set_flop_input(b, nl.add_mux(enable, b, prev));
    prev = b;
  }
  block.outputs = {block.flops.back()};
  return block;
}

Block make_crc(Netlist& nl, const std::string& prefix, std::uint32_t width,
               NetId in, NetId enable,
               const std::vector<std::uint32_t>& taps) {
  if (width == 0) throw std::invalid_argument("make_crc: zero width");
  for (std::uint32_t t : taps) {
    if (t == 0 || t >= width)
      throw std::invalid_argument(
          "make_crc: taps must lie in [1, width)");
  }
  Block block;
  block.flops = make_flops(nl, prefix, width);
  const NetId feedback = nl.add_xor(block.flops.back(), in);
  for (std::uint32_t i = 0; i < width; ++i) {
    NetId next = i == 0 ? feedback : block.flops[i - 1];
    if (i != 0 &&
        std::find(taps.begin(), taps.end(), i) != taps.end())
      next = nl.add_xor(next, feedback);
    nl.set_flop_input(block.flops[i], nl.add_mux(enable, block.flops[i],
                                                 next));
  }
  block.outputs = {feedback};
  return block;
}

Block make_onehot_fsm(Netlist& nl, const std::string& prefix,
                      std::uint32_t states, NetId advance) {
  if (states < 2)
    throw std::invalid_argument("make_onehot_fsm: need >= 2 states");
  Block block;
  block.flops = make_flops(nl, prefix, states);
  // Self-initialization: flops reset to all-zero, which is not a legal
  // one-hot code; "none" forces stage 0 high on the first cycle.
  const NetId none = nl.add_not(reduce_or(nl, block.flops));
  for (std::uint32_t i = 0; i < states; ++i) {
    const NetId prev = block.flops[(i + states - 1) % states];
    NetId next = nl.add_mux(advance, block.flops[i], prev);
    if (i == 0) next = nl.add_or(next, none);
    nl.set_flop_input(block.flops[i], next);
  }
  block.outputs = block.flops;
  return block;
}

Block make_arbiter(Netlist& nl, const std::string& prefix,
                   const std::vector<NetId>& requests) {
  if (requests.empty())
    throw std::invalid_argument("make_arbiter: no requesters");
  Block block;
  // Priority chain: grant[i] = req[i] & none of req[0..i-1].
  std::vector<NetId> grants;
  NetId any_before = kInvalidNet;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    NetId g = requests[i];
    if (i > 0) g = nl.add_and(g, nl.add_not(any_before));
    grants.push_back(nl.add_gate(GateType::kBuf, {g},
                                 prefix + "_gnt" + std::to_string(i)));
    any_before = i == 0 ? requests[0] : nl.add_or(any_before, requests[i]);
  }
  const NetId any_grant = reduce_or(nl, grants);
  // Rotation pointer bookkeeping (advances whenever something is granted).
  if (requests.size() >= 2) {
    const Block ptr = make_onehot_fsm(nl, prefix + "_ptr",
                                      static_cast<std::uint32_t>(
                                          requests.size()),
                                      any_grant);
    block.flops = ptr.flops;
  }
  block.outputs = grants;
  return block;
}

Block make_fifo_ctrl(Netlist& nl, const std::string& prefix,
                     std::uint32_t depth_bits, NetId push, NetId pop) {
  if (depth_bits == 0)
    throw std::invalid_argument("make_fifo_ctrl: zero depth bits");
  Block block;
  block.flops = make_flops(nl, prefix + "_cnt", depth_bits);

  const NetId empty = nl.add_not(reduce_or(nl, block.flops));
  const NetId full = reduce_and(nl, block.flops);

  const NetId inc = nl.add_and(nl.add_and(push, nl.add_not(pop)),
                               nl.add_not(full));
  const NetId dec = nl.add_and(nl.add_and(pop, nl.add_not(push)),
                               nl.add_not(empty));

  NetId carry = inc;
  NetId borrow = dec;
  for (NetId b : block.flops) {
    // inc and dec are mutually exclusive, so a shared XOR toggles with
    // whichever chain is active.
    nl.set_flop_input(b, nl.add_xor(b, nl.add_or(carry, borrow)));
    carry = nl.add_and(carry, b);
    borrow = nl.add_and(borrow, nl.add_not(b));
  }
  block.outputs = {empty, full};
  return block;
}

Block make_credit_stage(Netlist& nl, const std::string& prefix,
                        std::uint32_t width,
                        const std::vector<NetId>& data_in, NetId valid_in,
                        NetId credit_return, std::uint32_t credit_bits) {
  if (data_in.size() != width)
    throw std::invalid_argument("make_credit_stage: data width mismatch");
  if (credit_bits == 0)
    throw std::invalid_argument("make_credit_stage: zero credit bits");
  Block block;

  // Credits-used counter: load consumes one, credit_return releases one.
  const auto used = make_flops(nl, prefix + "_used", credit_bits);
  const NetId used_full = reduce_and(nl, used);
  const NetId used_empty = nl.add_not(reduce_or(nl, used));
  const NetId load = nl.add_and(valid_in, nl.add_not(used_full));
  const NetId release = nl.add_and(credit_return, nl.add_not(used_empty));
  const NetId inc = nl.add_and(load, nl.add_not(release));
  const NetId dec = nl.add_and(release, nl.add_not(load));
  NetId carry = inc;
  NetId borrow = dec;
  for (NetId b : used) {
    nl.set_flop_input(b, nl.add_xor(b, nl.add_or(carry, borrow)));
    carry = nl.add_and(carry, b);
    borrow = nl.add_and(borrow, nl.add_not(b));
  }

  // Data register and valid flop.
  const auto data = make_flops(nl, prefix + "_data", width);
  for (std::uint32_t i = 0; i < width; ++i)
    nl.set_flop_input(data[i], nl.add_mux(load, data[i], data_in[i]));
  const NetId valid_out = nl.add_flop(prefix + "_valid");
  nl.set_flop_input(valid_out, load);

  block.flops = used;
  block.flops.insert(block.flops.end(), data.begin(), data.end());
  block.flops.push_back(valid_out);
  block.outputs = {valid_out};
  return block;
}

}  // namespace tracesel::netlist
