#pragma once
// Gate-level netlist IR — the substrate the SRR-based and PageRank-based
// baseline signal-selection methods (Sec. 5.4) operate on. The paper could
// not run those baselines on OpenSPARC T2 (they do not scale); they were
// compared on a USB 2.0 controller. src/netlist/usb_design.* builds a
// synthetic USB controller over this IR.
//
// The IR is a flat and-inverter-style graph with flip-flops:
//  - nets are dense ids; each net is driven by one gate;
//  - combinational gates: AND/OR/XOR/NOT/BUF/MUX and constants;
//  - primary inputs get fresh values every cycle;
//  - flip-flops sample their D input at the cycle boundary.
// Two evaluation modes: two-valued simulation (workload generation) and
// three-valued X-simulation with forward propagation + backward
// justification (the state-restoration engine of srr.*).

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace tracesel::netlist {

using NetId = std::uint32_t;
inline constexpr NetId kInvalidNet = ~NetId{0};

enum class GateType : std::uint8_t {
  kInput,   ///< primary input (no fanin)
  kConst0,  ///< constant 0
  kConst1,  ///< constant 1
  kFlop,    ///< D flip-flop; fanin[0] = D (set after creation)
  kBuf,     ///< fanin[0]
  kNot,     ///< !fanin[0]
  kAnd,     ///< &-reduction of fanins (>= 2)
  kOr,      ///< |-reduction of fanins (>= 2)
  kXor,     ///< ^-reduction of fanins (>= 2)
  kMux,     ///< fanin[0] ? fanin[2] : fanin[1]  (sel, a, b)
};

std::string to_string(GateType type);

struct Gate {
  GateType type = GateType::kBuf;
  std::vector<NetId> fanin;
  std::string name;  ///< optional; flops and IOs are usually named
};

/// Three-valued logic for restoration.
enum class Tri : std::uint8_t { kZero, kOne, kX };

class Netlist {
 public:
  NetId add_input(std::string name);
  NetId add_const(bool value);
  /// Creates a flop with undriven D; connect later with set_flop_input
  /// (two-phase construction allows feedback loops through flops).
  NetId add_flop(std::string name);
  void set_flop_input(NetId flop, NetId d);
  NetId add_gate(GateType type, std::vector<NetId> fanin,
                 std::string name = {});

  // Conveniences.
  NetId add_and(NetId a, NetId b) { return add_gate(GateType::kAnd, {a, b}); }
  NetId add_or(NetId a, NetId b) { return add_gate(GateType::kOr, {a, b}); }
  NetId add_xor(NetId a, NetId b) { return add_gate(GateType::kXor, {a, b}); }
  NetId add_not(NetId a) { return add_gate(GateType::kNot, {a}); }
  NetId add_mux(NetId sel, NetId if0, NetId if1) {
    return add_gate(GateType::kMux, {sel, if0, if1});
  }

  std::size_t num_nets() const { return gates_.size(); }
  const Gate& gate(NetId id) const;

  const std::vector<NetId>& inputs() const { return inputs_; }
  const std::vector<NetId>& flops() const { return flops_; }

  std::optional<NetId> find(std::string_view name) const;

  /// Nets that read `id` (combinational fanout plus flops whose D is id).
  const std::vector<NetId>& fanout(NetId id) const;

  /// Validates: every flop has a driven D input, no combinational cycles.
  /// Returns the topological order of combinational evaluation (flops and
  /// inputs first). Throws std::logic_error on violations.
  std::vector<NetId> validate_and_topo_order() const;

 private:
  std::vector<Gate> gates_;
  std::vector<NetId> inputs_;
  std::vector<NetId> flops_;
  mutable std::vector<std::vector<NetId>> fanout_;  // built lazily
  mutable bool fanout_valid_ = false;
};

/// Cycle-accurate two-valued simulation.
class Simulator {
 public:
  explicit Simulator(const Netlist& netlist);

  /// Sets all flops to 0 and clears the cycle counter.
  void reset();

  /// Applies one clock: evaluates combinational logic from the given
  /// primary-input values (indexed like netlist.inputs()), then clocks
  /// the flops. Returns the post-clock flop values (indexed like flops()).
  const std::vector<bool>& step(const std::vector<bool>& input_values);

  /// Current value of any net (valid after at least one step()).
  bool value(NetId id) const;

  std::uint64_t cycle() const { return cycle_; }

 private:
  void eval_comb();

  const Netlist* netlist_;
  std::vector<NetId> order_;
  std::vector<bool> values_;       // per net, after eval
  std::vector<bool> flop_state_;   // per flop index
  std::vector<bool> flop_out_;     // step() return storage
  std::uint64_t cycle_ = 0;
};

}  // namespace tracesel::netlist
