#pragma once
// Bug descriptors for the injection framework (Sec. 4, Table 2).
//
// The paper injected 14 communication bugs (industrial examples plus the
// Stanford QED bug model) into 5 IPs of OpenSPARC T2. At the transaction
// level those bugs manifest as four observable effect classes on messages:
// corrupted content, dropped messages (e.g. "an interrupt was never
// generated", case study 1), misrouted messages, and wrong decoding of a
// received message that poisons everything the receiver produces afterwards.

#include <cstdint>
#include <string>

#include "flow/types.hpp"

namespace tracesel::bug {

/// Table 2's bug category column.
enum class BugCategory { kControl, kData };

/// How the bug perturbs message traffic at the transaction level.
enum class BugEffect {
  kCorruptValue,  ///< message emitted with wrong content
  kDropMessage,   ///< message never emitted; its flow instance stalls
  kMisroute,      ///< message delivered to the wrong destination IP
  kWrongDecode,   ///< receiver misinterprets: all later messages of the
                  ///< same flow instance carry corrupted content
};

std::string to_string(BugCategory category);
std::string to_string(BugEffect effect);

/// One injected bug. `id` follows the tech-report numbering the paper's
/// Table 5 references (bug ids 1..36 across all buggy design versions).
struct Bug {
  int id = 0;
  std::string name;
  BugCategory category = BugCategory::kControl;
  BugEffect effect = BugEffect::kCorruptValue;
  std::string ip;      ///< buggy IP block (Table 2 "Buggy IP")
  int depth = 0;       ///< hierarchical depth of the IP (Table 2)
  std::string type;    ///< functional implication text (Table 2 "Bug type")
  std::string symptom; ///< failure message when the symptom manifests

  /// The message whose production/consumption is buggy.
  flow::MessageId target = flow::kInvalidMessage;
  /// XOR mask applied to corrupted content (corrupt/wrong-decode effects).
  std::uint64_t corrupt_mask = 0x1;
  /// The session index (0-based) at which the bug arms; before that the
  /// design behaves golden. Models "up to 21290999 clock cycles to
  /// manifest": late-arming bugs need long runs to show a symptom.
  std::uint32_t trigger_session = 0;
  /// Once armed, probability that a given occurrence of `target` is
  /// perturbed. < 1.0 models intermittent manifestation.
  double trigger_probability = 1.0;
  /// For kMisroute: the wrong destination IP name.
  std::string misroute_dest;
};

}  // namespace tracesel::bug
