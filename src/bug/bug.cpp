#include "bug/bug.hpp"

namespace tracesel::bug {

std::string to_string(BugCategory category) {
  switch (category) {
    case BugCategory::kControl: return "Control";
    case BugCategory::kData: return "Data";
  }
  return "?";
}

std::string to_string(BugEffect effect) {
  switch (effect) {
    case BugEffect::kCorruptValue: return "corrupt-value";
    case BugEffect::kDropMessage: return "drop-message";
    case BugEffect::kMisroute: return "misroute";
    case BugEffect::kWrongDecode: return "wrong-decode";
  }
  return "?";
}

}  // namespace tracesel::bug
