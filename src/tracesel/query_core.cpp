#include "tracesel/query_core.hpp"

#include <stdexcept>
#include <utility>

#include "flow/indexed_flow.hpp"
#include "selection/checkpoint.hpp"
#include "soc/scenario.hpp"
#include "util/atomic_file.hpp"
#include "util/obs.hpp"

namespace tracesel {

namespace {

constexpr std::size_t kMaxSpecBytes = 64u << 20;

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xFF;
    h *= 0x100000001B3ull;
  }
}

}  // namespace

std::unique_ptr<Workload> QueryCore::workload_from_spec(flow::ParsedSpec spec) {
  auto w = std::make_unique<Workload>();
  w->spec = std::make_unique<flow::ParsedSpec>(std::move(spec));
  w->catalog = &w->spec->catalog;
  return w;
}

std::unique_ptr<Workload> QueryCore::workload_t2() {
  auto w = std::make_unique<Workload>();
  w->t2 = std::make_unique<soc::T2Design>();
  w->catalog = &w->t2->catalog();
  w->spec_ref = "t2";
  return w;
}

std::unique_ptr<Workload> QueryCore::workload_usb() {
  auto w = std::make_unique<Workload>();
  w->usb = std::make_unique<netlist::UsbDesign>();
  w->catalog = &w->usb->catalog();
  w->spec_ref = "usb";
  return w;
}

std::unique_ptr<Workload> QueryCore::workload_from_interleaving(
    const flow::MessageCatalog& catalog, flow::InterleavedFlow u) {
  auto w = std::make_unique<Workload>();
  w->catalog = &catalog;
  w->u = std::make_unique<flow::InterleavedFlow>(std::move(u));
  return w;
}

void QueryCore::interleave(Workload& w, std::uint32_t instances,
                           const flow::InterleaveOptions& options) {
  OBS_SPAN("session.interleave");
  if (w.t2) {
    w.u = std::make_unique<flow::InterleavedFlow>(soc::build_interleaving(
        *w.t2, soc::scenario_by_id(static_cast<int>(instances)), options));
  } else if (w.usb) {
    w.u = std::make_unique<flow::InterleavedFlow>(
        w.usb->interleaving(instances, options));
  } else if (w.spec) {
    std::vector<const flow::Flow*> flows;
    for (const flow::Flow& f : w.spec->flows) flows.push_back(&f);
    w.u = std::make_unique<flow::InterleavedFlow>(flow::InterleavedFlow::build(
        flow::make_instances(flows, instances), options));
  } else {
    throw std::logic_error(
        "QueryCore::interleave: workload owns no spec or design");
  }
  w.instances = instances;
  w.selector.reset();
  w.parallel.reset();
}

void QueryCore::ensure_selectors(Workload& w) {
  if (!w.u)
    throw std::logic_error(
        "QueryCore: no interleaving (interleave the workload first)");
  if (!w.selector)
    w.selector =
        std::make_unique<selection::MessageSelector>(*w.catalog, *w.u);
  if (!w.parallel)
    w.parallel = std::make_unique<selection::ParallelSelector>(*w.selector);
}

util::Result<std::uint64_t> QueryCore::source_hash(const JobRequest& req) {
  if (!req.spec_text.empty()) return util::fnv1a64(req.spec_text);
  if (req.spec == "t2") return util::fnv1a64("builtin:t2");
  if (req.spec == "usb") return util::fnv1a64("builtin:usb");
  if (req.spec.empty())
    return util::Result<std::uint64_t>::err(
        util::ErrorCode::kInvalidArgument,
        "job request names no spec (set spec or spec_text)");
  auto bytes = util::read_file_capped(req.spec, kMaxSpecBytes);
  if (!bytes.ok()) return bytes.error();
  return util::fnv1a64(bytes.value());
}

std::uint64_t QueryCore::workload_key(const JobRequest& req,
                                      std::uint64_t source_hash) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  fnv_mix(h, source_hash);
  fnv_mix(h, req.instances);
  fnv_mix(h, req.symmetry_reduction ? 1 : 0);
  fnv_mix(h, req.max_nodes);
  fnv_mix(h, req.mem_budget_mb);
  return h;
}

std::unique_ptr<Workload> QueryCore::build_workload(const JobRequest& req,
                                                    util::CancelToken cancel) {
  std::unique_ptr<Workload> w;
  std::uint64_t hash = 0;
  if (!req.spec_text.empty()) {
    w = workload_from_spec(flow::parse_flow_spec(req.spec_text));
    hash = util::fnv1a64(req.spec_text);
  } else if (req.spec == "t2") {
    w = workload_t2();
    hash = util::fnv1a64("builtin:t2");
  } else if (req.spec == "usb") {
    w = workload_usb();
    hash = util::fnv1a64("builtin:usb");
  } else if (!req.spec.empty()) {
    // One read serves both the parse and the content hash, so the cache
    // key always matches the bytes that were actually compiled.
    auto bytes = util::read_file_capped(req.spec, kMaxSpecBytes);
    if (!bytes.ok()) throw std::runtime_error(bytes.error().message);
    hash = util::fnv1a64(bytes.value());
    flow::ParsedSpec spec = flow::parse_flow_spec(bytes.value());
    w = workload_from_spec(std::move(spec));
    w->spec_ref = req.spec;
  } else {
    throw std::invalid_argument(
        "job request names no spec (set spec or spec_text)");
  }
  w->source_hash = hash;

  flow::InterleaveOptions opt = req.interleave_options();
  opt.cancel = std::move(cancel);
  interleave(*w, req.instances, opt);
  ensure_selectors(*w);
  return w;
}

selection::SelectionResult QueryCore::select(
    const Workload& w, const selection::SelectorConfig& config,
    bool flow_constraint, util::ThreadPool* pool) {
  OBS_SPAN("session.select");
  if (!w.u || !w.selector)
    throw std::logic_error(
        "QueryCore::select: workload has no interleaving/selector");

  selection::SelectorConfig cfg = config;
  selection::SelectionResult result;
  if (flow_constraint) {
    // The repair loop is a short serial epilogue; its inner select() call
    // honours cfg.jobs by itself.
    result = w.selector->select_with_flow_constraint(cfg);
  } else {
    const std::size_t workers = util::ThreadPool::resolve_jobs(cfg.jobs);
    if (workers > 1) {
      if (!w.parallel)
        throw std::logic_error(
            "QueryCore::select: workload has no parallel selector");
      if (pool != nullptr) {
        result = w.parallel->select(cfg, pool);
      } else {
        util::ThreadPool local(workers);
        result = w.parallel->select(cfg, &local);
      }
    } else {
      cfg.jobs = 1;
      result = w.selector->select(cfg);
    }
  }

  // Surface any interleave-stage degradation alongside the selection's own.
  if (w.u->degraded()) {
    const std::string note = "interleave: " + w.u->degradation();
    result.degradation = result.degradation.empty()
                             ? note
                             : note + "; " + result.degradation;
  }
  return result;
}

selection::SelectionResult QueryCore::select(const Workload& w,
                                             const JobRequest& req,
                                             util::CancelToken cancel,
                                             util::ThreadPool* pool) {
  return select(w, req, std::move(cancel), RunOptions{}, pool);
}

selection::SelectionResult QueryCore::select(const Workload& w,
                                             const JobRequest& req,
                                             util::CancelToken cancel,
                                             const RunOptions& opts,
                                             util::ThreadPool* pool) {
  selection::SelectorConfig cfg = req.selector_config();
  cfg.cancel = std::move(cancel);
  cfg.checkpoint_spec_path = w.spec_ref;
  cfg.checkpoint_instances = w.instances;
  const bool flow_constraint =
      req.kind == JobRequest::Kind::kSelectFlowConstraint;
  // Checkpointing covers the plain Step 1-3 pipeline; the flow-constraint
  // repair loop re-runs select() with mutated candidate sets, for which a
  // wave snapshot of the primary search would be misleading.
  if (!flow_constraint && !opts.checkpoint_path.empty()) {
    cfg.checkpoint_path = opts.checkpoint_path;
    if (opts.checkpoint_interval > 0)
      cfg.checkpoint_interval = opts.checkpoint_interval;
    if (opts.try_resume && w.selector) {
      auto ck = selection::load_checkpoint(opts.checkpoint_path);
      if (ck.ok()) {
        // Pre-validate the search identity so a stale snapshot (edited
        // spec, different structural knobs under a colliding path) falls
        // back to a fresh run instead of throwing out of the engine.
        const std::uint64_t want = selection::search_fingerprint(
            *w.selector, cfg, cfg.mode == selection::SearchMode::kMaximal);
        if (ck.value().fingerprint == want) {
          cfg.resume_from = std::make_shared<const selection::SearchCheckpoint>(
              std::move(ck).value());
          OBS_COUNT("svc.ckpt.resumed", 1);
        } else {
          OBS_COUNT("svc.ckpt.stale", 1);
        }
      }
    }
  }
  if (cfg.resume_from) {
    // Belt and braces: the wave engine still validates seeds_total; treat
    // any residual mismatch as "checkpoint unusable", not a failed job.
    try {
      return select(w, cfg, flow_constraint, pool);
    } catch (const util::CancelledError&) {
      throw;
    } catch (const std::runtime_error&) {
      OBS_COUNT("svc.ckpt.stale", 1);
      cfg.resume_from.reset();
    }
  }
  return select(w, cfg, flow_constraint, pool);
}

util::Result<QueryCore::Outcome> QueryCore::run(const JobRequest& req,
                                                ArtifactStore* store,
                                                util::CancelToken cancel) {
  return run(req, store, std::move(cancel), RunOptions{});
}

util::Result<QueryCore::Outcome> QueryCore::run(const JobRequest& req,
                                                ArtifactStore* store,
                                                util::CancelToken cancel,
                                                const RunOptions& opts) {
  auto src = source_hash(req);
  if (!src.ok()) return src.error();

  Outcome out;
  auto build_shared = [&]() -> std::shared_ptr<const Workload> {
    return std::shared_ptr<const Workload>(build_workload(req, cancel));
  };

  if (store == nullptr) {
    out.workload = build_shared();
    out.result = std::make_shared<selection::SelectionResult>(
        select(*out.workload, req, cancel, opts));
    return out;
  }

  const std::uint64_t wkey = workload_key(req, src.value());
  out.workload = store->workload(wkey, build_shared, &out.workload_cache_hit);
  if (!out.workload) {
    // An in-flight builder on another thread failed; its failure is its
    // job's, not ours — build privately.
    out.workload = build_shared();
    out.workload_cache_hit = false;
  }

  // Share the compiled DP program across tenants of the same workload
  // (DESIGN.md §14). Keyed by the workload key: the program is a pure
  // function of the interleaved product. shared_program() compiles lazily
  // inside the flow, so a cache hit adopts the store's handle and a miss
  // publishes ours; a failed in-flight compile just falls back to the
  // flow's own lazy compile on first use.
  if (req.kernel == flow::KernelMode::kCompiled && out.workload->u) {
    auto program = store->kernel_program(
        wkey,
        [&]() -> std::shared_ptr<const flow::kernel::Program> {
          return out.workload->u->shared_program();
        },
        &out.kernel_cache_hit);
    if (program) out.workload->u->adopt_program(std::move(program));
  }

  const std::uint64_t rkey = req.canonical_hash(src.value());
  std::shared_ptr<const selection::SelectionResult> partial;
  out.result = store->result(
      rkey, req,
      [&]() -> std::shared_ptr<const selection::SelectionResult> {
        auto res = std::make_shared<selection::SelectionResult>(
            select(*out.workload, req, cancel, opts));
        if (res->partial) {
          // Interrupted searches are champions of the *explored* region —
          // caching one would hand later jobs a truncated answer.
          partial = std::move(res);
          return nullptr;
        }
        return res;
      },
      &out.result_cache_hit);
  if (!out.result) {
    if (partial) {
      out.result = std::move(partial);
    } else {
      // Waiter on a builder that failed or went partial: run privately.
      out.result = std::make_shared<selection::SelectionResult>(
          select(*out.workload, req, cancel, opts));
      out.result_cache_hit = false;
    }
  }
  return out;
}

}  // namespace tracesel
