#pragma once
// tracesel::resilience — one include for the long-running-job survival
// surface (docs/resilience.md): cooperative cancellation and deadlines,
// search checkpoints, and the conventional process exit codes.
//
//   auto token = tracesel::resilience::CancelToken::make();
//   session.config().cancel = token;
//   session.config().checkpoint_path = "search.ck";
//   ...                                   // SIGINT handler: token.cancel()
//   auto result = session.select();       // result.partial on interruption
//
//   auto resumed = tracesel::Session::resume("search.ck");
//
// Everything here is an alias for a symbol that lives with its layer
// (util/cancel.hpp, selection/checkpoint.hpp); this header only gathers
// the embedding-application surface in one place.

#include "selection/checkpoint.hpp"
#include "util/cancel.hpp"

namespace tracesel::resilience {

// --- cancellation ---
using util::CancelledError;
using util::CancelToken;

// --- checkpoint files ---
using selection::load_checkpoint;
using selection::save_checkpoint;
using selection::SearchCheckpoint;

// --- process exit codes (the CLI contract; useful for wrappers) ---
/// Success.
inline constexpr int kExitOk = 0;
/// Bad usage (unknown flag, missing operand).
inline constexpr int kExitUsage = 1;
/// Runtime failure (unreadable spec, capacity exceeded, I/O error).
inline constexpr int kExitFailure = 2;
/// Interrupted: the run was cancelled (signal or deadline) and produced a
/// partial result and/or a final checkpoint instead of a full answer.
inline constexpr int kExitInterrupted = 3;

}  // namespace tracesel::resilience
