#pragma once
// tracesel::Session — the stateful *compatibility shim* over the split
// facade (DESIGN.md §13).
//
// Since PR 7 the pipeline's compute lives in two pieces:
//
//   tracesel::QueryCore      stateless pure functions of a job description
//                            (query_core.hpp) — resolve spec, interleave,
//                            run Step 1-3;
//   tracesel::ArtifactStore  the shared immutable cache concurrent jobs
//                            memoize through (artifact_store.hpp).
//
// New code — and everything that wants caching or concurrency, such as
// the traceseld daemon — should target tracesel::JobRequest + QueryCore
// directly. Session remains the convenient fluent surface for scripts,
// examples and the existing tests: it owns one QueryCore Workload, keeps
// the mutable SelectorConfig between calls, and forwards every pipeline
// step to QueryCore, so the two surfaces cannot produce different bits.
//
//   auto session = tracesel::Session::from_spec_file("soc.flow");
//   session.config().jobs = 8;
//   session.interleave(2);
//   auto result = session.select();
//
// Three construction modes:
//   - from_spec_file / from_spec_text / from_spec: a parsed .flow spec the
//     session owns; interleave() products come from its flows.
//   - from_interleaving: an externally built interleaving plus its catalog
//     (e.g. netlist::UsbDesign) — the catalog must outlive the session.
//   - t2(): the built-in OpenSPARC T2 uncore; scenario(id) builds the
//     interleaving and run_case_study()/monte_carlo() drive the debug leg.

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "debug/case_study.hpp"
#include "debug/monte_carlo.hpp"
#include "flow/interleaved_flow.hpp"
#include "flow/parser.hpp"
#include "netlist/usb_design.hpp"
#include "selection/checkpoint.hpp"
#include "selection/dist_coordinator.hpp"
#include "selection/dist_worker.hpp"
#include "selection/localization.hpp"
#include "selection/parallel_selector.hpp"
#include "selection/selector.hpp"
#include "soc/t2_design.hpp"
#include "tracesel/query_core.hpp"
#include "util/result.hpp"
#include "util/thread_pool.hpp"

namespace tracesel {

class Session {
 public:
  // --- construction ---
  static Session from_spec_file(const std::string& path);
  static Session from_spec_text(std::string_view text);
  static Session from_spec(flow::ParsedSpec spec);
  /// Adopts an externally built interleaving. `catalog` is borrowed and
  /// must outlive the session.
  static Session from_interleaving(const flow::MessageCatalog& catalog,
                                   flow::InterleavedFlow u);
  /// A session over the built-in OpenSPARC T2 uncore (debug leg enabled).
  static Session t2();
  /// A session over the built-in USB 2.0 function controller
  /// (netlist::UsbDesign); interleave(n) builds rx ||| tx with n indexed
  /// instances each. Checkpoint/work-unit provenance records "usb", so
  /// distributed workers and resume() can rebuild it.
  static Session usb();
  /// Rebuilds a session from a search checkpoint written by a previous
  /// run (docs/resilience.md): loads + verifies the file, re-parses the
  /// recorded spec (a .flow path, or "t2" for t2 sessions), restores the
  /// interleave options and selection config, rebuilds the interleaving
  /// and arms config().resume_from — the next select() continues the
  /// search and finishes bit-identical to an uninterrupted run. A typed
  /// error (never a crash) on missing/corrupt/provenance-free checkpoints.
  static util::Result<Session> resume(const std::string& checkpoint_path);

  Session(Session&&) = default;
  Session& operator=(Session&&) = default;

  // --- configuration (one options struct for the whole pipeline) ---
  /// Adopts the config; a non-empty trace_out/metrics_out also enables the
  /// tracesel::obs layer for the process.
  Session& configure(const selection::SelectorConfig& config);
  /// Writes the Chrome trace (config().trace_out) and/or metrics JSON
  /// (config().metrics_out) accumulated so far; true when every requested
  /// sink was written. No-op (true) when neither path is set.
  bool write_observability() const;
  selection::SelectorConfig& config() { return config_; }
  const selection::SelectorConfig& config() const { return config_; }
  /// Shorthand for config().jobs = n.
  Session& jobs(std::size_t n);
  /// Engine options used by subsequent interleave()/scenario() calls —
  /// symmetry reduction (default on), node budget, cross-check mode.
  Session& interleave_options(const flow::InterleaveOptions& options);
  const flow::InterleaveOptions& interleave_options() const {
    return interleave_options_;
  }

  // --- pipeline (thin forwards to QueryCore) ---
  /// Builds the interleaving of all spec flows with `instances` legally
  /// indexed instances each (spec sessions only).
  Session& interleave(std::uint32_t instances = 2);
  /// Builds the interleaving of a built-in T2 scenario (t2 sessions only).
  Session& scenario(int id);

  /// Step 1-3 over the current interleaving, honouring config() including
  /// jobs. Caches the result for localize().
  selection::SelectionResult select();
  /// Step 1-3 farmed to worker processes by a selection::DistCoordinator
  /// (docs/distributed.md) — bit-identical to select() for every worker
  /// count and fault schedule. Degrades gracefully to the in-process path
  /// (with a degradation note) when distribution is impossible: no worker
  /// command, no spec provenance for workers to rebuild from, a
  /// sequential search mode (greedy/knapsack) or a memory-budget
  /// degradation. last_dist_stats() reports the run's failure/retry
  /// accounting.
  selection::SelectionResult run_distributed(const selection::DistConfig& dist);
  const selection::DistStats& last_dist_stats() const { return dist_stats_; }
  /// selection::WorkerEngineFactory for `tracesel --worker`: rebuilds the
  /// session a work-unit request describes (spec path / "t2" / "usb" +
  /// instances + search config) and exposes its ParallelSelector.
  static util::Result<selection::WorkerEngine> worker_engine(
      const selection::SearchCheckpoint& ck);
  /// select() plus the every-flow-represented repair
  /// (MessageSelector::select_with_flow_constraint).
  selection::SelectionResult select_with_flow_constraint();
  /// Localization of an observed projection against the last select()
  /// result's observable set.
  selection::LocalizationResult localize(
      std::span<const flow::IndexedMessage> observed) const;

  // --- debug leg (t2 sessions) ---
  /// Runs one built-in case study (1-based id). config().jobs is threaded
  /// into the selection step.
  debug::CaseStudyResult run_case_study(int case_id,
                                        debug::CaseStudyOptions options = {});
  /// Monte-Carlo repetition of a case study across seeds; trials run on
  /// the session pool (config().jobs workers).
  debug::MonteCarloResult monte_carlo(int case_id, std::size_t runs,
                                      debug::CaseStudyOptions base = {});

  // --- introspection ---
  const flow::MessageCatalog& catalog() const;
  const flow::ParsedSpec& spec() const;
  const flow::InterleavedFlow& interleaving() const;
  const soc::T2Design& design() const;
  bool has_interleaving() const { return workload_ && workload_->u; }
  /// The session's underlying QueryCore workload (always non-null).
  const Workload& workload() const { return *workload_; }
  const std::optional<selection::SelectionResult>& last_selection() const {
    return last_selection_;
  }

 private:
  Session() : workload_(std::make_unique<Workload>()) {}

  /// The session pool, sized to config().jobs; nullptr when serial.
  util::ThreadPool* pool();
  selection::SelectionResult select_impl(bool flow_constraint);
  /// Builds (once) and returns the parallel selector over the current
  /// interleaving; throws when no interleaving exists.
  selection::ParallelSelector& ensure_parallel();
  /// Fills checkpoint/work-unit provenance into a copy of config().
  selection::SelectorConfig config_with_provenance() const;
  /// interleave_options_ with the session's cancel token and memory
  /// budget folded in, as every engine call expects.
  flow::InterleaveOptions merged_interleave_options() const;

  selection::SelectorConfig config_;
  flow::InterleaveOptions interleave_options_;
  std::unique_ptr<Workload> workload_;
  std::unique_ptr<util::ThreadPool> pool_;
  std::size_t pool_workers_ = 0;
  std::optional<selection::SelectionResult> last_selection_;
  selection::DistStats dist_stats_;
};

}  // namespace tracesel
