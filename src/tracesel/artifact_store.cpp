#include "tracesel/artifact_store.hpp"

#include "flow/kernel.hpp"
#include "tracesel/query_core.hpp"
#include "util/obs.hpp"

namespace tracesel {

namespace {

/// Shared get-or-build protocol over one entry map. The builder runs
/// outside the lock; its exceptions reach only the building caller (the
/// promise is fulfilled with nullptr first, so waiters rebuild privately
/// instead of inheriting a failure — e.g. one job's CancelledError must
/// not cancel the jobs waiting on it).
template <typename EntryMap, typename Ptr, typename Build, typename OnInsert>
Ptr get_or_build(std::mutex& mu, EntryMap& entries, std::uint64_t key,
                 const Build& build, const OnInsert& on_insert, bool* hit,
                 std::uint64_t& hits, std::uint64_t& misses) {
  std::promise<Ptr> promise;
  {
    std::unique_lock<std::mutex> lk(mu);
    auto it = entries.find(key);
    if (it != entries.end()) {
      ++hits;
      if (hit != nullptr) *hit = true;
      std::shared_future<Ptr> inflight = it->second.future;
      // Wait outside the lock: an in-flight build may take seconds and
      // must not serialize every other store operation behind it.
      lk.unlock();
      return inflight.get();
    }
    ++misses;
    if (hit != nullptr) *hit = false;
    auto& entry = entries[key];
    entry.future = promise.get_future().share();
    on_insert(entry);
  }

  Ptr value;
  try {
    value = build();
  } catch (...) {
    promise.set_value(nullptr);
    std::lock_guard<std::mutex> lk(mu);
    entries.erase(key);
    throw;
  }
  promise.set_value(value);
  std::lock_guard<std::mutex> lk(mu);
  if (value == nullptr) {
    entries.erase(key);  // "do not cache" — partial results
  } else {
    auto it = entries.find(key);
    if (it != entries.end()) it->second.ready = true;
  }
  return value;
}

}  // namespace

std::shared_ptr<const Workload> ArtifactStore::workload(
    std::uint64_t key, const WorkloadBuilder& build, bool* cache_hit) {
  bool hit = false;
  auto value = get_or_build<decltype(workloads_),
                            std::shared_ptr<const Workload>>(
      mu_, workloads_, key, build, [](Entry<Workload>&) {}, &hit,
      stats_.workload_hits, stats_.workload_misses);
  if (cache_hit != nullptr) *cache_hit = hit && value != nullptr;
  // One OBS_COUNT per name: the macro caches its metric id per call site.
  if (hit)
    OBS_COUNT("store.workload.hits", 1);
  else
    OBS_COUNT("store.workload.misses", 1);
  return value;
}

std::shared_ptr<const selection::SelectionResult> ArtifactStore::result(
    std::uint64_t key, const JobRequest& request, const ResultBuilder& build,
    bool* cache_hit) {
  // Collision guard: an entry whose request is a different computation is
  // served as an uncached miss — the cache must never hand job B job A's
  // bits just because two canonical hashes collided.
  bool collision = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = results_.find(key);
    if (it != results_.end() &&
        !it->second.request.same_computation(request)) {
      collision = true;
      ++stats_.collisions;
      ++stats_.result_misses;
    }
  }
  if (collision) {  // never hold the store lock across a search
    if (cache_hit != nullptr) *cache_hit = false;
    OBS_COUNT("store.result.collisions", 1);
    return build();
  }

  bool hit = false;
  auto value =
      get_or_build<decltype(results_),
                   std::shared_ptr<const selection::SelectionResult>>(
          mu_, results_, key, build,
          [&](ResultEntry& e) { e.request = request; }, &hit,
          stats_.result_hits, stats_.result_misses);
  if (cache_hit != nullptr) *cache_hit = hit && value != nullptr;
  if (hit)
    OBS_COUNT("store.result.hits", 1);
  else
    OBS_COUNT("store.result.misses", 1);
  return value;
}

std::shared_ptr<const flow::kernel::Program> ArtifactStore::kernel_program(
    std::uint64_t key, const KernelBuilder& build, bool* cache_hit) {
  bool hit = false;
  auto value = get_or_build<decltype(kernels_),
                            std::shared_ptr<const flow::kernel::Program>>(
      mu_, kernels_, key, build, [](Entry<flow::kernel::Program>&) {}, &hit,
      stats_.kernel_hits, stats_.kernel_misses);
  if (cache_hit != nullptr) *cache_hit = hit && value != nullptr;
  if (hit)
    OBS_COUNT("store.kernel.hits", 1);
  else
    OBS_COUNT("store.kernel.misses", 1);
  return value;
}

ArtifactStore::Stats ArtifactStore::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  Stats s = stats_;
  s.workload_entries = 0;
  for (const auto& [k, e] : workloads_)
    if (e.ready) ++s.workload_entries;
  s.result_entries = 0;
  for (const auto& [k, e] : results_)
    if (e.ready) ++s.result_entries;
  s.kernel_entries = 0;
  for (const auto& [k, e] : kernels_)
    if (e.ready) ++s.kernel_entries;
  return s;
}

void ArtifactStore::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  workloads_.clear();
  results_.clear();
  kernels_.clear();
}

}  // namespace tracesel
