#include "tracesel/session.hpp"

#include <stdexcept>
#include <utility>

#include "flow/indexed_flow.hpp"
#include "soc/scenario.hpp"
#include "util/obs.hpp"

namespace tracesel {

Session Session::from_spec(flow::ParsedSpec spec) {
  Session s;
  s.spec_ = std::make_unique<flow::ParsedSpec>(std::move(spec));
  s.catalog_ = &s.spec_->catalog;
  return s;
}

Session Session::from_spec_file(const std::string& path) {
  return from_spec(flow::parse_flow_spec_file(path));
}

Session Session::from_spec_text(std::string_view text) {
  return from_spec(flow::parse_flow_spec(text));
}

Session Session::from_interleaving(const flow::MessageCatalog& catalog,
                                   flow::InterleavedFlow u) {
  Session s;
  s.catalog_ = &catalog;
  s.u_ = std::make_unique<flow::InterleavedFlow>(std::move(u));
  return s;
}

Session Session::t2() {
  Session s;
  s.t2_ = std::make_unique<soc::T2Design>();
  s.catalog_ = &s.t2_->catalog();
  return s;
}

Session& Session::configure(const selection::SelectorConfig& config) {
  config_ = config;
  // Asking for an observability sink is the opt-in for the whole layer;
  // never the reverse (a config without sinks must not silence a layer an
  // embedding application enabled directly).
  if (!config_.trace_out.empty() || !config_.metrics_out.empty())
    obs::set_enabled(true);
  return *this;
}

bool Session::write_observability() const {
  obs::update_process_gauges();
  bool ok = true;
  if (!config_.trace_out.empty())
    ok = obs::write_chrome_trace(config_.trace_out) && ok;
  if (!config_.metrics_out.empty())
    ok = obs::write_metrics(config_.metrics_out) && ok;
  return ok;
}

Session& Session::jobs(std::size_t n) {
  config_.jobs = n;
  return *this;
}

Session& Session::interleave_options(const flow::InterleaveOptions& options) {
  interleave_options_ = options;
  // A rebuilt engine invalidates any interleaving-derived state.
  if (u_) {
    u_.reset();
    invalidate_selector();
  }
  return *this;
}

Session& Session::interleave(std::uint32_t instances) {
  if (!spec_)
    throw std::logic_error(
        "Session::interleave: no spec loaded (use scenario() for t2 "
        "sessions)");
  OBS_SPAN("session.interleave");
  std::vector<const flow::Flow*> flows;
  for (const flow::Flow& f : spec_->flows) flows.push_back(&f);
  u_ = std::make_unique<flow::InterleavedFlow>(flow::InterleavedFlow::build(
      flow::make_instances(flows, instances), interleave_options_));
  invalidate_selector();
  return *this;
}

Session& Session::scenario(int id) {
  if (!t2_)
    throw std::logic_error("Session::scenario: not a t2 session");
  OBS_SPAN("session.interleave");
  u_ = std::make_unique<flow::InterleavedFlow>(soc::build_interleaving(
      *t2_, soc::scenario_by_id(id), interleave_options_));
  invalidate_selector();
  return *this;
}

void Session::invalidate_selector() {
  selector_.reset();
  parallel_.reset();
  last_selection_.reset();
}

util::ThreadPool* Session::pool() {
  const std::size_t workers = util::ThreadPool::resolve_jobs(config_.jobs);
  if (workers <= 1) return nullptr;
  if (!pool_ || pool_workers_ != workers) {
    pool_ = std::make_unique<util::ThreadPool>(workers);
    pool_workers_ = workers;
  }
  return pool_.get();
}

selection::SelectionResult Session::select_impl(bool flow_constraint) {
  OBS_SPAN("session.select");
  if (!u_) {
    // Spec sessions default to the paper's two legally indexed instances.
    if (spec_) interleave(2);
    else
      throw std::logic_error(
          "Session::select: no interleaving (call scenario()/interleave() "
          "first)");
  }
  if (!selector_)
    selector_ =
        std::make_unique<selection::MessageSelector>(*catalog_, *u_);

  selection::SelectionResult result;
  if (flow_constraint) {
    // The repair loop is a short serial epilogue; its inner select() call
    // honours config_.jobs by itself.
    result = selector_->select_with_flow_constraint(config_);
  } else if (util::ThreadPool* p = pool()) {
    if (!parallel_)
      parallel_ = std::make_unique<selection::ParallelSelector>(*selector_);
    result = parallel_->select(config_, p);
  } else {
    selection::SelectorConfig serial = config_;
    serial.jobs = 1;
    result = selector_->select(serial);
  }
  last_selection_ = result;
  return result;
}

selection::SelectionResult Session::select() { return select_impl(false); }

selection::SelectionResult Session::select_with_flow_constraint() {
  return select_impl(true);
}

selection::LocalizationResult Session::localize(
    std::span<const flow::IndexedMessage> observed) const {
  if (!u_ || !last_selection_)
    throw std::logic_error("Session::localize: run select() first");
  return selection::localize(*u_, last_selection_->observable(),
                             std::vector<flow::IndexedMessage>(
                                 observed.begin(), observed.end()));
}

debug::CaseStudyResult Session::run_case_study(
    int case_id, debug::CaseStudyOptions options) {
  if (!t2_)
    throw std::logic_error("Session::run_case_study: not a t2 session");
  const auto cases = soc::standard_case_studies();
  if (case_id < 1 || case_id > static_cast<int>(cases.size()))
    throw std::out_of_range("Session::run_case_study: case id out of range");
  OBS_SPAN("session.case_study");
  options.jobs = config_.jobs;
  return debug::run_case_study(*t2_, cases[case_id - 1], options);
}

debug::MonteCarloResult Session::monte_carlo(int case_id, std::size_t runs,
                                             debug::CaseStudyOptions base) {
  if (!t2_)
    throw std::logic_error("Session::monte_carlo: not a t2 session");
  const auto cases = soc::standard_case_studies();
  if (case_id < 1 || case_id > static_cast<int>(cases.size()))
    throw std::out_of_range("Session::monte_carlo: case id out of range");
  // Parallelism is applied across trials, not inside each trial's
  // selection step — nesting pools would oversubscribe the machine.
  OBS_SPAN("session.monte_carlo");
  return debug::evaluate_case_study(*t2_, cases[case_id - 1], base, runs,
                                    config_.jobs, pool());
}

const flow::MessageCatalog& Session::catalog() const {
  if (!catalog_) throw std::logic_error("Session: no catalog");
  return *catalog_;
}

const flow::ParsedSpec& Session::spec() const {
  if (!spec_) throw std::logic_error("Session: not a spec session");
  return *spec_;
}

const flow::InterleavedFlow& Session::interleaving() const {
  if (!u_)
    throw std::logic_error(
        "Session: no interleaving (call interleave()/scenario())");
  return *u_;
}

const soc::T2Design& Session::design() const {
  if (!t2_) throw std::logic_error("Session: not a t2 session");
  return *t2_;
}

}  // namespace tracesel
