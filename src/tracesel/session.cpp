#include "tracesel/session.hpp"

#include <stdexcept>
#include <utility>

#include "flow/indexed_flow.hpp"
#include "soc/scenario.hpp"
#include "util/obs.hpp"

namespace tracesel {

Session Session::from_spec(flow::ParsedSpec spec) {
  Session s;
  s.workload_ = QueryCore::workload_from_spec(std::move(spec));
  return s;
}

Session Session::from_spec_file(const std::string& path) {
  Session s = from_spec(flow::parse_flow_spec_file(path));
  s.workload_->spec_ref = path;  // checkpoint provenance
  return s;
}

Session Session::from_spec_text(std::string_view text) {
  return from_spec(flow::parse_flow_spec(text));
}

Session Session::from_interleaving(const flow::MessageCatalog& catalog,
                                   flow::InterleavedFlow u) {
  Session s;
  s.workload_ = QueryCore::workload_from_interleaving(catalog, std::move(u));
  return s;
}

Session Session::t2() {
  Session s;
  s.workload_ = QueryCore::workload_t2();
  return s;
}

Session Session::usb() {
  Session s;
  s.workload_ = QueryCore::workload_usb();
  return s;
}

Session& Session::configure(const selection::SelectorConfig& config) {
  config_ = config;
  // Asking for an observability sink is the opt-in for the whole layer;
  // never the reverse (a config without sinks must not silence a layer an
  // embedding application enabled directly).
  if (!config_.trace_out.empty() || !config_.metrics_out.empty())
    obs::set_enabled(true);
  return *this;
}

bool Session::write_observability() const {
  obs::update_process_gauges();
  bool ok = true;
  if (!config_.trace_out.empty())
    ok = obs::write_chrome_trace(config_.trace_out) && ok;
  if (!config_.metrics_out.empty())
    ok = obs::write_metrics(config_.metrics_out) && ok;
  return ok;
}

Session& Session::jobs(std::size_t n) {
  config_.jobs = n;
  return *this;
}

Session& Session::interleave_options(const flow::InterleaveOptions& options) {
  interleave_options_ = options;
  // A rebuilt engine invalidates any interleaving-derived state.
  if (workload_->u) {
    workload_->u.reset();
    workload_->selector.reset();
    workload_->parallel.reset();
    last_selection_.reset();
  }
  return *this;
}

flow::InterleaveOptions Session::merged_interleave_options() const {
  flow::InterleaveOptions opt = interleave_options_;
  opt.cancel = config_.cancel;  // SIGINT/deadline covers the build too
  if (opt.mem_budget_mb == 0) opt.mem_budget_mb = config_.mem_budget_mb;
  // --kernel=generic must reach the flow-level dispatch too, not just the
  // Step 2 scoring loops (both default to kCompiled).
  if (config_.kernel != flow::KernelMode::kCompiled)
    opt.kernel = config_.kernel;
  return opt;
}

Session& Session::interleave(std::uint32_t instances) {
  if (!workload_->spec && !workload_->usb)
    throw std::logic_error(
        "Session::interleave: no spec loaded (use scenario() for t2 "
        "sessions)");
  QueryCore::interleave(*workload_, instances, merged_interleave_options());
  last_selection_.reset();
  return *this;
}

Session& Session::scenario(int id) {
  if (!workload_->t2)
    throw std::logic_error("Session::scenario: not a t2 session");
  QueryCore::interleave(*workload_, static_cast<std::uint32_t>(id),
                        merged_interleave_options());
  last_selection_.reset();
  return *this;
}

util::ThreadPool* Session::pool() {
  const std::size_t workers = util::ThreadPool::resolve_jobs(config_.jobs);
  if (workers <= 1) return nullptr;
  if (!pool_ || pool_workers_ != workers) {
    pool_ = std::make_unique<util::ThreadPool>(workers);
    pool_workers_ = workers;
  }
  return pool_.get();
}

selection::SelectorConfig Session::config_with_provenance() const {
  // Checkpoint/work-unit provenance so Session::resume and distributed
  // workers can rebuild this pipeline.
  selection::SelectorConfig cfg = config_;
  if (cfg.checkpoint_spec_path.empty())
    cfg.checkpoint_spec_path = workload_->spec_ref;
  if (cfg.checkpoint_instances == 0)
    cfg.checkpoint_instances = workload_->instances;
  return cfg;
}

selection::ParallelSelector& Session::ensure_parallel() {
  QueryCore::ensure_selectors(*workload_);
  return *workload_->parallel;
}

selection::SelectionResult Session::select_impl(bool flow_constraint) {
  if (!workload_->u) {
    // Spec sessions default to the paper's two legally indexed instances;
    // usb sessions to one instance of each flow (Table 4 setting).
    if (workload_->spec) interleave(2);
    else if (workload_->usb) interleave(1);
    else
      throw std::logic_error(
          "Session::select: no interleaving (call scenario()/interleave() "
          "first)");
  }
  QueryCore::ensure_selectors(*workload_);

  selection::SelectionResult result = QueryCore::select(
      *workload_, config_with_provenance(), flow_constraint, pool());

  // A resume is one-shot: the next select() starts a fresh search instead
  // of silently skipping shards against a stale checkpoint.
  config_.resume_from.reset();

  last_selection_ = result;
  return result;
}

util::Result<Session> Session::resume(const std::string& checkpoint_path) {
  auto loaded = selection::load_checkpoint(checkpoint_path);
  if (!loaded.ok()) return loaded.error();
  selection::SearchCheckpoint ck = std::move(loaded).value();
  if (ck.spec_path.empty())
    return util::Error{
        util::ErrorCode::kInvalidArgument,
        "checkpoint carries no spec provenance (written outside a "
        "Session); rebuild the pipeline manually and set "
        "config().resume_from"};
  if (ck.mode > static_cast<std::uint32_t>(selection::SearchMode::kKnapsack))
    return util::Error{util::ErrorCode::kParse,
                       "checkpoint records an unknown search mode"};
  try {
    Session s = ck.spec_path == "t2"    ? t2()
                : ck.spec_path == "usb" ? usb()
                                        : from_spec_file(ck.spec_path);
    s.interleave_options_.symmetry_reduction = ck.symmetry_reduction;
    s.interleave_options_.max_nodes = static_cast<std::size_t>(ck.max_nodes);
    s.config_.buffer_width = ck.buffer_width;
    s.config_.mode = static_cast<selection::SearchMode>(ck.mode);
    s.config_.packing = ck.packing;
    s.config_.max_combinations = static_cast<std::size_t>(ck.max_combinations);
    // Keep checkpointing where the interrupted run left it.
    s.config_.checkpoint_path = checkpoint_path;
    if (ck.spec_path == "t2")
      s.scenario(static_cast<int>(ck.instances));
    else
      s.interleave(ck.instances);
    s.config_.resume_from =
        std::make_shared<selection::SearchCheckpoint>(std::move(ck));
    return s;
  } catch (const std::exception& e) {
    return util::Error{util::ErrorCode::kInvalidArgument,
                       std::string("Session::resume: ") + e.what()};
  }
}

selection::SelectionResult Session::run_distributed(
    const selection::DistConfig& dist) {
  OBS_SPAN("session.select_distributed");
  if (!workload_->u) {
    if (workload_->spec) interleave(2);
    else if (workload_->usb) interleave(1);
    else if (workload_->t2)
      throw std::logic_error(
          "Session::run_distributed: no interleaving (call scenario() "
          "first)");
    else
      throw std::logic_error(
          "Session::run_distributed: no interleaving (call interleave() "
          "first)");
  }
  selection::SelectorConfig cfg = config_with_provenance();
  // Wave checkpointing is an in-process feature; the distributed engine's
  // unit of recovery is the work unit itself.
  cfg.checkpoint_path.clear();

  // Graceful degradation: anything that makes worker processes impossible
  // or pointless falls back to the in-process engine, with the reason
  // recorded as a degradation note — never an error.
  std::string why;
  if (dist.workers == 0)
    why = "workers == 0";
  else if (dist.worker_argv.empty())
    why = "no worker command";
  else if (cfg.checkpoint_spec_path.empty())
    why = "no spec provenance for workers to rebuild from";
  else if (cfg.mode == selection::SearchMode::kGreedy ||
           cfg.mode == selection::SearchMode::kKnapsack)
    why = "sequential search mode";
  else if (ensure_parallel().memory_degraded(cfg))
    why = "memory budget forces the beam-limited serial search";
  if (!why.empty()) {
    OBS_COUNT("dist.degraded_runs", 1);
    dist_stats_ = selection::DistStats{};
    selection::SelectionResult result = select_impl(false);
    const std::string note = "distributed: fell back in-process (" + why + ")";
    result.degradation = result.degradation.empty()
                             ? note
                             : note + "; " + result.degradation;
    last_selection_ = result;
    return result;
  }

  selection::DistCoordinator coordinator(ensure_parallel(), dist);
  selection::SelectionResult result = coordinator.run(cfg);
  dist_stats_ = coordinator.stats();
  if (workload_->u->degraded()) {
    const std::string note = "interleave: " + workload_->u->degradation();
    result.degradation = result.degradation.empty()
                             ? note
                             : note + "; " + result.degradation;
  }
  last_selection_ = result;
  return result;
}

util::Result<selection::WorkerEngine> Session::worker_engine(
    const selection::SearchCheckpoint& ck) {
  if (ck.spec_path.empty())
    return util::Error{util::ErrorCode::kInvalidArgument,
                       "work unit carries no spec provenance"};
  if (ck.mode > static_cast<std::uint32_t>(selection::SearchMode::kKnapsack))
    return util::Error{util::ErrorCode::kParse,
                       "work unit records an unknown search mode"};
  try {
    Session s = ck.spec_path == "t2"    ? t2()
                : ck.spec_path == "usb" ? usb()
                                        : from_spec_file(ck.spec_path);
    s.interleave_options_.symmetry_reduction = ck.symmetry_reduction;
    s.interleave_options_.max_nodes = static_cast<std::size_t>(ck.max_nodes);
    s.config_.buffer_width = ck.buffer_width;
    s.config_.mode = static_cast<selection::SearchMode>(ck.mode);
    s.config_.packing = ck.packing;
    s.config_.max_combinations =
        static_cast<std::size_t>(ck.max_combinations);
    s.config_.jobs = 1;  // the unit walk is serial; workers ARE the pool
    if (ck.spec_path == "t2")
      s.scenario(static_cast<int>(ck.instances));
    else
      s.interleave(ck.instances);

    auto holder = std::make_shared<Session>(std::move(s));
    selection::ParallelSelector& parallel = holder->ensure_parallel();
    selection::WorkerEngine engine;
    engine.keepalive = holder;
    engine.selector = std::shared_ptr<const selection::ParallelSelector>(
        holder, &parallel);
    engine.config = holder->config_with_provenance();
    return engine;
  } catch (const std::exception& e) {
    return util::Error{util::ErrorCode::kInvalidArgument,
                       std::string("Session::worker_engine: ") + e.what()};
  }
}

selection::SelectionResult Session::select() { return select_impl(false); }

selection::SelectionResult Session::select_with_flow_constraint() {
  return select_impl(true);
}

selection::LocalizationResult Session::localize(
    std::span<const flow::IndexedMessage> observed) const {
  if (!workload_->u || !last_selection_)
    throw std::logic_error("Session::localize: run select() first");
  return selection::localize(*workload_->u, last_selection_->observable(),
                             std::vector<flow::IndexedMessage>(
                                 observed.begin(), observed.end()));
}

debug::CaseStudyResult Session::run_case_study(
    int case_id, debug::CaseStudyOptions options) {
  if (!workload_->t2)
    throw std::logic_error("Session::run_case_study: not a t2 session");
  const auto cases = soc::standard_case_studies();
  if (case_id < 1 || case_id > static_cast<int>(cases.size()))
    throw std::out_of_range("Session::run_case_study: case id out of range");
  OBS_SPAN("session.case_study");
  options.jobs = config_.jobs;
  return debug::run_case_study(*workload_->t2, cases[case_id - 1], options);
}

debug::MonteCarloResult Session::monte_carlo(int case_id, std::size_t runs,
                                             debug::CaseStudyOptions base) {
  if (!workload_->t2)
    throw std::logic_error("Session::monte_carlo: not a t2 session");
  const auto cases = soc::standard_case_studies();
  if (case_id < 1 || case_id > static_cast<int>(cases.size()))
    throw std::out_of_range("Session::monte_carlo: case id out of range");
  // Parallelism is applied across trials, not inside each trial's
  // selection step — nesting pools would oversubscribe the machine.
  OBS_SPAN("session.monte_carlo");
  return debug::evaluate_case_study(*workload_->t2, cases[case_id - 1], base,
                                    runs, config_.jobs, pool(),
                                    &config_.cancel);
}

const flow::MessageCatalog& Session::catalog() const {
  if (!workload_->catalog) throw std::logic_error("Session: no catalog");
  return *workload_->catalog;
}

const flow::ParsedSpec& Session::spec() const {
  if (!workload_->spec) throw std::logic_error("Session: not a spec session");
  return *workload_->spec;
}

const flow::InterleavedFlow& Session::interleaving() const {
  if (!workload_->u)
    throw std::logic_error(
        "Session: no interleaving (call interleave()/scenario())");
  return *workload_->u;
}

const soc::T2Design& Session::design() const {
  if (!workload_->t2) throw std::logic_error("Session: not a t2 session");
  return *workload_->t2;
}

}  // namespace tracesel
