#include "tracesel/job_request.hpp"

#include <charconv>
#include <sstream>

#include "util/framing.hpp"

namespace tracesel {

namespace {

constexpr char kJobTag[] = "tracesel-job";

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xFF;
    h *= 0x100000001B3ull;
  }
}

bool to_u64(std::string_view tok, std::uint64_t& out) {
  const char* first = tok.data();
  const char* last = tok.data() + tok.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last;
}

util::Result<JobRequest> malformed(const std::string& what) {
  return util::Result<JobRequest>::err(util::ErrorCode::kParse,
                                       "job request: " + what);
}

}  // namespace

selection::SelectorConfig JobRequest::selector_config() const {
  selection::SelectorConfig cfg;
  cfg.buffer_width = buffer_width;
  cfg.packing = packing;
  cfg.mode = mode;
  cfg.max_combinations = static_cast<std::size_t>(max_combinations);
  cfg.jobs = jobs;
  cfg.mem_budget_mb = static_cast<std::size_t>(mem_budget_mb);
  cfg.kernel = kernel;
  return cfg;
}

flow::InterleaveOptions JobRequest::interleave_options() const {
  flow::InterleaveOptions opt;
  opt.symmetry_reduction = symmetry_reduction;
  opt.max_nodes = static_cast<std::size_t>(max_nodes);
  opt.mem_budget_mb = static_cast<std::size_t>(mem_budget_mb);
  opt.kernel = kernel;
  return opt;
}

std::uint64_t JobRequest::canonical_hash(std::uint64_t source_hash) const {
  std::uint64_t h = 0xCBF29CE484222325ull;
  fnv_mix(h, kVersion);
  fnv_mix(h, source_hash);
  fnv_mix(h, instances);
  fnv_mix(h, symmetry_reduction ? 1 : 0);
  fnv_mix(h, max_nodes);
  fnv_mix(h, static_cast<std::uint64_t>(kind));
  fnv_mix(h, buffer_width);
  fnv_mix(h, static_cast<std::uint64_t>(mode));
  fnv_mix(h, packing ? 1 : 0);
  fnv_mix(h, max_combinations);
  fnv_mix(h, mem_budget_mb);
  return h;
}

bool JobRequest::same_computation(const JobRequest& other) const {
  return spec == other.spec && spec_text == other.spec_text &&
         instances == other.instances &&
         symmetry_reduction == other.symmetry_reduction &&
         max_nodes == other.max_nodes && kind == other.kind &&
         buffer_width == other.buffer_width && mode == other.mode &&
         packing == other.packing &&
         max_combinations == other.max_combinations &&
         mem_budget_mb == other.mem_budget_mb;
}

std::string_view to_string(selection::SearchMode mode) {
  switch (mode) {
    case selection::SearchMode::kExhaustive: return "exhaustive";
    case selection::SearchMode::kMaximal: return "maximal";
    case selection::SearchMode::kGreedy: return "greedy";
    case selection::SearchMode::kKnapsack: return "knapsack";
  }
  return "maximal";
}

util::Result<selection::SearchMode> parse_search_mode(std::string_view name) {
  if (name == "exhaustive") return selection::SearchMode::kExhaustive;
  if (name == "maximal") return selection::SearchMode::kMaximal;
  if (name == "greedy") return selection::SearchMode::kGreedy;
  if (name == "knapsack") return selection::SearchMode::kKnapsack;
  return util::Result<selection::SearchMode>::err(
      util::ErrorCode::kInvalidArgument,
      "unknown search mode '" + std::string(name) +
          "' (expected exhaustive|maximal|greedy|knapsack)");
}

std::string serialize_job_request(const JobRequest& req) {
  std::ostringstream body;
  body << "kind "
       << (req.kind == JobRequest::Kind::kSelectFlowConstraint
               ? "select-flow-constraint"
               : "select")
       << '\n';
  body << "spec " << (req.spec.empty() ? "-" : req.spec) << '\n';
  body << "instances " << req.instances << '\n';
  body << "symmetry_reduction " << (req.symmetry_reduction ? 1 : 0) << '\n';
  body << "max_nodes " << req.max_nodes << '\n';
  body << "buffer_width " << req.buffer_width << '\n';
  body << "mode " << to_string(req.mode) << '\n';
  body << "packing " << (req.packing ? 1 : 0) << '\n';
  body << "max_combinations " << req.max_combinations << '\n';
  body << "mem_budget_mb " << req.mem_budget_mb << '\n';
  body << "jobs " << req.jobs << '\n';
  body << "deadline_ms " << req.deadline_ms << '\n';
  body << "kernel "
       << (req.kernel == flow::KernelMode::kGeneric ? "generic" : "compiled")
       << '\n';
  body << "trace_id " << req.trace_id << '\n';
  body << "parent_span_id " << req.parent_span_id << '\n';
  // Tenant labels are single tokens on the wire ("-" = none); spaces would
  // desynchronize the key/value line discipline.
  std::string tenant = req.tenant.empty() ? "-" : req.tenant;
  for (char& c : tenant)
    if (c == ' ' || c == '\n' || c == '\r') c = '_';
  body << "tenant " << tenant << '\n';
  // The inline spec rides as a length-prefixed raw block (it is multi-line
  // text, so the "key value" line discipline cannot carry it).
  body << "spec_text " << req.spec_text.size() << '\n';
  body << req.spec_text;
  body << "\nend\n";
  return util::encode_envelope(kJobTag, JobRequest::kVersion, body.str());
}

util::Result<JobRequest> parse_job_request(std::string_view text) {
  const auto payload =
      util::decode_envelope(text, kJobTag, JobRequest::kVersion, "job request");
  if (!payload.ok()) return payload.error();
  std::string_view body = payload.value();

  JobRequest req;
  // Reset string defaults: an omitted "spec" line must read back as empty,
  // not as the struct's convenience default.
  req.spec.clear();

  while (true) {
    const std::size_t eol = body.find('\n');
    if (eol == std::string_view::npos)
      return malformed("truncated (no 'end' marker)");
    std::string_view line = body.substr(0, eol);
    body.remove_prefix(eol + 1);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty()) continue;

    const std::size_t sp = line.find(' ');
    const std::string_view key = line.substr(0, sp);
    const std::string_view value =
        sp == std::string_view::npos ? std::string_view{} : line.substr(sp + 1);

    if (key == "end") break;

    if (key == "kind") {
      if (value == "select") {
        req.kind = JobRequest::Kind::kSelect;
      } else if (value == "select-flow-constraint") {
        req.kind = JobRequest::Kind::kSelectFlowConstraint;
      } else {
        return malformed("unknown kind '" + std::string(value) + "'");
      }
    } else if (key == "spec") {
      req.spec = value == "-" ? "" : std::string(value);
    } else if (key == "tenant") {
      req.tenant = value == "-" ? "" : std::string(value);
    } else if (key == "mode") {
      auto mode = parse_search_mode(value);
      if (!mode.ok()) return mode.error();
      req.mode = mode.value();
    } else if (key == "kernel") {
      if (value == "compiled") {
        req.kernel = flow::KernelMode::kCompiled;
      } else if (value == "generic") {
        req.kernel = flow::KernelMode::kGeneric;
      } else {
        return malformed("unknown kernel '" + std::string(value) +
                         "' (expected compiled|generic)");
      }
    } else if (key == "spec_text") {
      std::uint64_t n = 0;
      if (!to_u64(value, n)) return malformed("bad spec_text length");
      if (n > body.size()) return malformed("spec_text block truncated");
      req.spec_text = std::string(body.substr(0, static_cast<std::size_t>(n)));
      body.remove_prefix(static_cast<std::size_t>(n));
      // The block is followed by "\nend\n" (tolerating a trailing \r\n).
      if (!body.empty() && body.front() == '\n') body.remove_prefix(1);
    } else {
      std::uint64_t v = 0;
      if (!to_u64(value, v))
        return malformed("bad value for '" + std::string(key) + "'");
      if (key == "instances") {
        req.instances = static_cast<std::uint32_t>(v);
      } else if (key == "symmetry_reduction") {
        req.symmetry_reduction = v != 0;
      } else if (key == "max_nodes") {
        req.max_nodes = v;
      } else if (key == "buffer_width") {
        req.buffer_width = static_cast<std::uint32_t>(v);
      } else if (key == "packing") {
        req.packing = v != 0;
      } else if (key == "max_combinations") {
        req.max_combinations = v;
      } else if (key == "mem_budget_mb") {
        req.mem_budget_mb = v;
      } else if (key == "jobs") {
        req.jobs = static_cast<std::uint32_t>(v);
      } else if (key == "deadline_ms") {
        req.deadline_ms = v;
      } else if (key == "trace_id") {
        req.trace_id = v;
      } else if (key == "parent_span_id") {
        req.parent_span_id = v;
      } else {
        return malformed("unknown field '" + std::string(key) + "'");
      }
    }
  }

  if (req.spec.empty() && req.spec_text.empty())
    return malformed("neither a spec reference nor inline spec text");
  return req;
}

}  // namespace tracesel
