#pragma once
// tracesel::ArtifactStore — the shared, immutable artifact cache of the
// query layer (DESIGN.md §13).
//
// A selection job factors into two expensive, *deterministic* products:
//
//   workload  =  parse spec -> interleave -> selector over the product
//   result    =  Step 1-3 search over a workload under a search config
//
// Both are pure functions of the job description (tracesel::JobRequest),
// so concurrent and repeated jobs can share them. The store is a
// content-addressed map over the request's canonical hashes:
//
//   workload key : FNV-1a(spec content hash, instances, interleave knobs)
//   result key   : JobRequest::canonical_hash(spec content hash) — every
//                  structural field, no runtime knobs (jobs/deadline),
//                  because the engine produces bit-identical results
//                  across worker counts.
//
// Concurrency. Each key holds a shared_future: the first requester becomes
// the builder, later requesters block on the future instead of duplicating
// the work (in-flight deduplication). A builder that fails — throws, or
// returns nullptr to signal "do not cache" (partial results) — leaves the
// key vacant and hands waiters nullptr, so they rebuild for themselves;
// a failed or partial build never poisons the cache.
//
// Hash collisions. Result entries carry the JobRequest that built them;
// a hit whose request is not the same computation (JobRequest::
// same_computation) is served as a miss, bypassing the cache, and counted
// in Stats::collisions.
//
// Everything cached is immutable-by-contract: values are handed out as
// shared_ptr<const T> and must never be mutated by consumers.

#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>

#include "selection/selector.hpp"
#include "tracesel/job_request.hpp"

namespace tracesel {

struct Workload;  // query_core.hpp — the resolved spec/interleaving/selector

namespace flow::kernel {
class Program;  // flow/kernel.hpp — compiled per-spec DP program
}

class ArtifactStore {
 public:
  struct Stats {
    std::uint64_t workload_hits = 0;
    std::uint64_t workload_misses = 0;
    std::uint64_t result_hits = 0;
    std::uint64_t result_misses = 0;
    std::uint64_t kernel_hits = 0;      ///< compiled kernel programs (§14)
    std::uint64_t kernel_misses = 0;
    std::uint64_t collisions = 0;       ///< result-key hash collisions
    std::uint64_t workload_entries = 0; ///< cached (completed) values
    std::uint64_t result_entries = 0;
    std::uint64_t kernel_entries = 0;
  };

  using WorkloadBuilder = std::function<std::shared_ptr<const Workload>()>;
  using ResultBuilder =
      std::function<std::shared_ptr<const selection::SelectionResult>()>;
  using KernelBuilder =
      std::function<std::shared_ptr<const flow::kernel::Program>()>;

  ArtifactStore() = default;
  ArtifactStore(const ArtifactStore&) = delete;
  ArtifactStore& operator=(const ArtifactStore&) = delete;

  /// Returns the cached workload for `key`, or runs `build` (exactly once
  /// across concurrent requesters) and caches its non-null product.
  /// nullptr only when an in-flight builder on another thread failed —
  /// callers then build privately. `cache_hit` (optional) reports whether
  /// the value came from the cache / an in-flight builder rather than
  /// `build`.
  std::shared_ptr<const Workload> workload(std::uint64_t key,
                                           const WorkloadBuilder& build,
                                           bool* cache_hit = nullptr);

  /// Same protocol for selection results, plus the collision guard:
  /// `request` must be the job the key was derived from. A builder that
  /// returns nullptr (partial result — cancelled, deadline, budget) leaves
  /// the key uncached.
  std::shared_ptr<const selection::SelectionResult> result(
      std::uint64_t key, const JobRequest& request, const ResultBuilder& build,
      bool* cache_hit = nullptr);

  /// Compiled flow::kernel::Program cache (DESIGN.md §14), keyed by the
  /// workload key (spec content hash + interleave shape) so every daemon
  /// tenant resolving the same spec shares one compile. Same get-or-build
  /// protocol as workload(): first requester compiles, waiters block on the
  /// future, a throwing builder leaves the key vacant.
  std::shared_ptr<const flow::kernel::Program> kernel_program(
      std::uint64_t key, const KernelBuilder& build, bool* cache_hit = nullptr);

  Stats stats() const;
  /// Drops every cached value (in-flight builds are unaffected: their
  /// futures complete but land in the fresh generation only if re-asked).
  void clear();

 private:
  template <typename T>
  struct Entry {
    std::shared_future<std::shared_ptr<const T>> future;
    bool ready = false;  ///< set once the builder committed a value
  };

  struct ResultEntry : Entry<selection::SelectionResult> {
    JobRequest request;
  };

  mutable std::mutex mu_;
  std::map<std::uint64_t, Entry<Workload>> workloads_;
  std::map<std::uint64_t, ResultEntry> results_;
  std::map<std::uint64_t, Entry<flow::kernel::Program>> kernels_;
  Stats stats_;
};

}  // namespace tracesel
