#pragma once
// Umbrella header: the public API of the tracesel library in one include.
//
//   #include "tracesel/tracesel.hpp"
//
// The primary entry point is the stateless query API (PR 7):
//
//   tracesel::JobRequest req;           // one versioned request object
//   req.spec = "soc.flow";              // or "t2" / "usb" builtins
//   req.instances = 2;
//   tracesel::ArtifactStore store;      // shared, content-addressed cache
//   auto out = tracesel::QueryCore::run(req, &store);
//   if (out.ok()) use(*out.value().result);
//
// QueryCore (query_core.hpp) is a set of pure functions from JobRequest to
// selection results; every expensive intermediate (the parsed spec, the
// interleave product, the memoized selection) lives in the caller-owned
// ArtifactStore (artifact_store.hpp), keyed by the request's canonical
// hash, so concurrent and repeated queries share work safely. This is the
// API the traceseld daemon (service/server.hpp) multiplexes jobs onto.
//
// tracesel::Session (session.hpp) remains as a thin compatibility facade
// over QueryCore for incremental, stateful exploration (load a spec once,
// re-interleave, re-select, resume checkpoints, drive case studies). New
// code — and anything that runs queries concurrently — should prefer
// QueryCore + ArtifactStore; direct Session use is kept source-compatible
// but is no longer the primary API.
//
// The layer headers below remain public for callers that need one
// building block (e.g. a custom flow built with flow::FlowBuilder, or the
// gate-level baselines, which stay in baseline/ and netlist/).

// Flow layer: messages, flow DAGs, interleavings, the .flow parser.
#include "flow/flow.hpp"
#include "flow/flow_builder.hpp"
#include "flow/interleaved_flow.hpp"
#include "flow/lint.hpp"
#include "flow/message.hpp"
#include "flow/parser.hpp"
#include "flow/stats.hpp"

// Selection layer: Steps 1-3, parallel engine, the distributed
// coordinator/worker protocol, multi-scenario planning.
#include "selection/combination.hpp"
#include "selection/coverage.hpp"
#include "selection/dist_coordinator.hpp"
#include "selection/dist_worker.hpp"
#include "selection/gain_memo.hpp"
#include "selection/info_gain.hpp"
#include "selection/localization.hpp"
#include "selection/multi_scenario.hpp"
#include "selection/packing.hpp"
#include "selection/parallel_selector.hpp"
#include "selection/selector.hpp"

// SoC + debug layer: the T2 uncore, simulation, capture, case studies.
#include "debug/case_study.hpp"
#include "debug/monte_carlo.hpp"
#include "debug/workbench.hpp"
#include "soc/scenario.hpp"
#include "soc/t2_design.hpp"

// Utilities callers commonly need alongside the facade.
#include "util/thread_pool.hpp"

// The query API: versioned requests, the content-addressed artifact
// cache, and the stateless query core.
#include "tracesel/artifact_store.hpp"
#include "tracesel/job_request.hpp"
#include "tracesel/query_core.hpp"

// The resilience surface (cancellation tokens, checkpoints, exit-code
// contract) and the stateful compatibility facade.
#include "tracesel/resilience.hpp"
#include "tracesel/session.hpp"
