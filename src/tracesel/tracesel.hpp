#pragma once
// Umbrella header: the public API of the tracesel library in one include.
//
//   #include "tracesel/tracesel.hpp"
//
//   auto session = tracesel::Session::from_spec_file("soc.flow");
//   session.config().jobs = 8;          // pool width for every hot loop
//   auto result = session.interleave(2).select();
//
// tracesel::Session (session.hpp) is the intended entry point; the layer
// headers below remain public for callers that need one building block
// (e.g. a custom flow built with flow::FlowBuilder, or the gate-level
// baselines, which stay in baseline/ and netlist/).

// Flow layer: messages, flow DAGs, interleavings, the .flow parser.
#include "flow/flow.hpp"
#include "flow/flow_builder.hpp"
#include "flow/interleaved_flow.hpp"
#include "flow/lint.hpp"
#include "flow/message.hpp"
#include "flow/parser.hpp"
#include "flow/stats.hpp"

// Selection layer: Steps 1-3, parallel engine, the distributed
// coordinator/worker protocol, multi-scenario planning.
#include "selection/combination.hpp"
#include "selection/coverage.hpp"
#include "selection/dist_coordinator.hpp"
#include "selection/dist_worker.hpp"
#include "selection/gain_memo.hpp"
#include "selection/info_gain.hpp"
#include "selection/localization.hpp"
#include "selection/multi_scenario.hpp"
#include "selection/packing.hpp"
#include "selection/parallel_selector.hpp"
#include "selection/selector.hpp"

// SoC + debug layer: the T2 uncore, simulation, capture, case studies.
#include "debug/case_study.hpp"
#include "debug/monte_carlo.hpp"
#include "debug/workbench.hpp"
#include "soc/scenario.hpp"
#include "soc/t2_design.hpp"

// Utilities callers commonly need alongside the facade.
#include "util/thread_pool.hpp"

// The facade itself, plus the resilience surface (cancellation tokens,
// checkpoints, exit-code contract).
#include "tracesel/resilience.hpp"
#include "tracesel/session.hpp"
