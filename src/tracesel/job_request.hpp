#pragma once
// tracesel::JobRequest — the one versioned description of a selection job.
//
// Before PR 7 the knobs of a run were smeared across four structs that grew
// organically: selection::SelectorConfig (search), flow::InterleaveOptions
// (product build), the checkpoint provenance fields riding inside
// SelectorConfig, and ad-hoc CLI flag plumbing. Every consumer — the CLI,
// the daemon wire protocol, the artifact cache — needed its own partial
// copy, and nothing guaranteed the copies agreed.
//
// A JobRequest is the consolidation: one flat, versioned struct holding
//
//   - the workload:   which spec ("t2", "usb" or a .flow path — or inline
//                     spec text for daemon clients without a shared
//                     filesystem) and how many instances to interleave;
//   - the structure:  every knob that can change the *bits* of the result
//                     (buffer width, search mode, packing, combination cap,
//                     interleave engine options, memory budget);
//   - the runtime:    knobs that change only *how fast* the same bits are
//                     produced (jobs, deadline) — excluded from the
//                     canonical hash, because the engine guarantees results
//                     bit-identical across them.
//
// The same struct feeds three consumers from one source of truth:
//   canonical_hash()     -> the ArtifactStore cache key,
//   serialize/parse      -> the daemon wire encoding (util envelope codec),
//   selector_config() /
//   interleave_options() -> the legacy engine structs.

#include <cstdint>
#include <string>
#include <string_view>

#include "flow/interleaved_flow.hpp"
#include "selection/selector.hpp"
#include "util/result.hpp"

namespace tracesel {

struct JobRequest {
  static constexpr std::uint32_t kVersion = 1;

  /// Which selection entry point runs. kSelectFlowConstraint adds the
  /// every-flow-represented repair (MessageSelector::
  /// select_with_flow_constraint) on top of the plain Step 1-3 pipeline.
  enum class Kind : std::uint32_t { kSelect = 0, kSelectFlowConstraint = 1 };

  // --- workload (hashed via the resolved spec content) ---
  /// "t2", "usb", or a .flow spec path. Ignored when spec_text is set.
  std::string spec = "t2";
  /// Inline .flow spec text; lets daemon clients submit jobs without a
  /// filesystem shared with the server. Takes precedence over `spec`.
  std::string spec_text;
  /// interleave(n) count for spec/usb workloads; scenario id for t2.
  std::uint32_t instances = 2;

  // --- structural: interleave engine (hashed) ---
  bool symmetry_reduction = true;
  std::uint64_t max_nodes = 2'000'000;

  // --- structural: search (hashed) ---
  Kind kind = Kind::kSelect;
  std::uint32_t buffer_width = 32;
  selection::SearchMode mode = selection::SearchMode::kMaximal;
  bool packing = true;
  std::uint64_t max_combinations = 1u << 22;
  std::uint64_t mem_budget_mb = 0;

  // --- runtime knobs (never hashed: results are bit-identical across
  //     worker counts, and a deadline either leaves the result complete or
  //     marks it partial — and partial results are never cached) ---
  std::uint32_t jobs = 1;
  /// 0 = no deadline. Mapped onto a util::CancelToken deadline by the
  /// daemon; the engine returns the best-so-far partial result when it
  /// fires.
  std::uint64_t deadline_ms = 0;
  /// Which DP/scoring engine runs the hot loops (DESIGN.md §14). A runtime
  /// knob like jobs: kCompiled and kGeneric produce bit-identical results,
  /// so a cached result computed under either mode serves both.
  flow::KernelMode kernel = flow::KernelMode::kCompiled;
  /// Distributed trace identity (obs::TraceContext; 0 = client not
  /// tracing). Runtime-only: identical jobs from traced and untraced
  /// clients share a cache line, and the daemon's telemetry reply is keyed
  /// to the connection, not the result bits.
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span_id = 0;
  /// Free-form tenant label for the daemon's per-tenant accounting
  /// (telemetry surface); empty = unattributed. Never hashed.
  std::string tenant;

  /// The engine structs this request denotes. Conversion is one-way by
  /// design: JobRequest is the source of truth, the legacy structs are the
  /// derived view.
  selection::SelectorConfig selector_config() const;
  flow::InterleaveOptions interleave_options() const;

  /// The artifact-cache key: FNV-1a over the format version, every
  /// structural field and `source_hash` — the caller-resolved hash of the
  /// actual spec *content* (file bytes, inline text, or a builtin tag), so
  /// two paths to the same bytes share a cache line and an edited spec
  /// misses. Runtime knobs are deliberately absent; see above.
  std::uint64_t canonical_hash(std::uint64_t source_hash) const;

  /// True when the two requests denote the same computation (all hashed
  /// fields equal). Used by the store to guard against hash collisions.
  bool same_computation(const JobRequest& other) const;
};

/// Search-mode names used by the wire format and the CLI (--mode).
std::string_view to_string(selection::SearchMode mode);
util::Result<selection::SearchMode> parse_search_mode(std::string_view name);

/// Wire encoding: a "tracesel-job <version> <checksum>" envelope (the
/// shared util codec, like checkpoints and work units) over "key value"
/// lines, with the inline spec text as a trailing length-prefixed block.
std::string serialize_job_request(const JobRequest& req);
util::Result<JobRequest> parse_job_request(std::string_view text);

}  // namespace tracesel
