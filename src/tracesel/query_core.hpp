#pragma once
// tracesel::QueryCore — the stateless compute core of the facade
// (DESIGN.md §13).
//
// PR 7 splits the old do-everything tracesel::Session in two:
//
//   QueryCore      pure functions of (JobRequest, spec content): resolve
//                  the workload, interleave, run Step 1-3. No hidden
//                  state, no ordering constraints — safe to call from any
//                  thread, which is what lets the traceseld daemon run
//                  jobs concurrently.
//   ArtifactStore  the shared immutable cache those functions memoize
//                  through (artifact_store.hpp).
//
// tracesel::Session remains as a thin stateful compatibility shim over
// these two (session.hpp): it owns one Workload, carries the mutable
// SelectorConfig, and forwards its pipeline calls here.
//
// A Workload is the resolved middle product: the owned spec (or builtin
// design), its message catalog, the interleaved flow, and the selectors
// over it. Once built it is immutable and safely shared by concurrent
// jobs — the only mutation under the hood is the ParallelSelector's
// GainMemo, which is internally sharded-locked and insert-only.

#include <cstdint>
#include <memory>
#include <string>

#include "flow/interleaved_flow.hpp"
#include "flow/parser.hpp"
#include "netlist/usb_design.hpp"
#include "selection/parallel_selector.hpp"
#include "selection/selector.hpp"
#include "soc/t2_design.hpp"
#include "tracesel/artifact_store.hpp"
#include "tracesel/job_request.hpp"
#include "util/cancel.hpp"
#include "util/result.hpp"
#include "util/thread_pool.hpp"

namespace tracesel {

/// The resolved workload of a job: spec/design ownership, catalog, the
/// interleaved product and the selectors over it. Immutable once built
/// (see file comment); handed around as shared_ptr<const Workload>.
struct Workload {
  // Exactly one of spec / t2 / usb is set for owned workloads; all three
  // may be null for from_interleaving sessions (borrowed catalog).
  std::unique_ptr<flow::ParsedSpec> spec;
  std::unique_ptr<soc::T2Design> t2;
  std::unique_ptr<netlist::UsbDesign> usb;
  const flow::MessageCatalog* catalog = nullptr;

  std::unique_ptr<flow::InterleavedFlow> u;
  std::unique_ptr<selection::MessageSelector> selector;
  std::unique_ptr<selection::ParallelSelector> parallel;

  /// Checkpoint/work-unit provenance: "t2", "usb", the spec path, or ""
  /// (inline text / adopted interleaving — not rebuildable by reference).
  std::string spec_ref;
  /// Last interleave() count (spec/usb) or scenario id (t2); 0 = none yet.
  std::uint32_t instances = 0;
  /// FNV-1a over the resolved spec content; 0 when not content-addressed.
  std::uint64_t source_hash = 0;
};

class QueryCore {
 public:
  /// What a cached run hands back. `result` is shared with the store (do
  /// not mutate); `workload` keeps the catalog the result's message ids
  /// point into alive.
  struct Outcome {
    std::shared_ptr<const Workload> workload;
    std::shared_ptr<const selection::SelectionResult> result;
    bool workload_cache_hit = false;
    bool result_cache_hit = false;
    /// Compiled kernel program resolved from the store rather than compiled
    /// here (always false under --kernel=generic or without a store).
    bool kernel_cache_hit = false;
  };

  // --- workload construction (Session and the daemon both build through
  //     these, so the two surfaces cannot drift) ---
  static std::unique_ptr<Workload> workload_from_spec(flow::ParsedSpec spec);
  static std::unique_ptr<Workload> workload_t2();
  static std::unique_ptr<Workload> workload_usb();
  /// Adopts an externally built interleaving; `catalog` is borrowed and
  /// must outlive the workload.
  static std::unique_ptr<Workload> workload_from_interleaving(
      const flow::MessageCatalog& catalog, flow::InterleavedFlow u);

  /// Builds the interleaved product into `w` (spec/usb: `instances`
  /// indexed instances; t2: scenario id) and drops any stale selectors.
  /// Engine failures throw (std::length_error, util::CancelledError, ...).
  static void interleave(Workload& w, std::uint32_t instances,
                         const flow::InterleaveOptions& options);
  /// Builds (once) the MessageSelector/ParallelSelector over w.u.
  static void ensure_selectors(Workload& w);

  // --- content addressing ---
  /// FNV-1a over the spec content the request resolves to: inline text,
  /// "builtin:t2"/"builtin:usb", or the spec file's bytes (a typed error
  /// when the file cannot be read).
  static util::Result<std::uint64_t> source_hash(const JobRequest& req);
  /// The ArtifactStore workload key: source hash + every field that
  /// changes the interleaved product.
  static std::uint64_t workload_key(const JobRequest& req,
                                    std::uint64_t source_hash);

  /// Resolves and interleaves the request's workload from scratch.
  /// Parse/engine failures throw.
  static std::unique_ptr<Workload> build_workload(const JobRequest& req,
                                                  util::CancelToken cancel);

  /// Step 1-3 over an existing workload. The low-level entry point both
  /// Session::select and the request path share: honours every
  /// SelectorConfig field (cancel, checkpoint, resume, shard budget),
  /// picks the serial / pooled / flow-constraint path exactly as the old
  /// Session did, and folds interleave-stage degradation into the result.
  /// `pool` (optional) is reused when the effective worker count exceeds
  /// one; otherwise a call-local pool is created.
  static selection::SelectionResult select(
      const Workload& w, const selection::SelectorConfig& config,
      bool flow_constraint, util::ThreadPool* pool = nullptr);

  /// Crash-durability knobs for a run (the traceseld journal wires these;
  /// DESIGN.md §16). All default-off: the 3-argument run()/select() below
  /// behave exactly as before.
  struct RunOptions {
    /// When non-empty, the sharded search snapshots here at every wave
    /// boundary (selection/checkpoint.hpp semantics).
    std::string checkpoint_path;
    /// Seed shards per snapshot wave.
    std::size_t checkpoint_interval = 64;
    /// When true and checkpoint_path holds a loadable checkpoint whose
    /// fingerprint matches this search, resume from it instead of
    /// recomputing — the Session::resume-equivalent path for daemon jobs.
    /// A stale or mismatched checkpoint is ignored (fresh run), never an
    /// error: recovery must degrade, not fail.
    bool try_resume = false;
  };

  /// The request-level wrapper: derives the SelectorConfig from `req`
  /// (structural knobs + provenance), arms `cancel`, and runs select().
  static selection::SelectionResult select(const Workload& w,
                                           const JobRequest& req,
                                           util::CancelToken cancel,
                                           util::ThreadPool* pool = nullptr);
  /// As above, plus checkpoint/resume wiring from `opts`.
  static selection::SelectionResult select(const Workload& w,
                                           const JobRequest& req,
                                           util::CancelToken cancel,
                                           const RunOptions& opts,
                                           util::ThreadPool* pool = nullptr);

  /// The full memoized pipeline: resolve -> workload (cached) -> select
  /// (cached). `store` may be null (no caching). Partial results
  /// (cancelled / deadline) are returned but never cached. A typed error
  /// when the spec file cannot be read; parse and engine failures throw,
  /// including util::CancelledError when `cancel` fires during the
  /// interleave build.
  static util::Result<Outcome> run(const JobRequest& req, ArtifactStore* store,
                                   util::CancelToken cancel);
  /// As above with checkpoint/resume wiring (RunOptions{} == the plain
  /// overload). Resumed runs are bit-identical to uninterrupted ones —
  /// the PR-5 wave-protocol guarantee, now reachable per job.
  static util::Result<Outcome> run(const JobRequest& req, ArtifactStore* store,
                                   util::CancelToken cancel,
                                   const RunOptions& opts);
};

}  // namespace tracesel
